//! Property tests: the event-driven loop is bit-equivalent to the naive
//! per-cycle reference over randomized kernels and configurations, and
//! its fast-forward never jumps past a ready event.

use common::{CtaId, WarpId};
use isa::{GridShape, KernelProgram, MemRef, Opcode, WarpInstr, WarpInstrStream};
use proptest::prelude::*;
use sim::{
    CtaSchedule, EngineMode, GpuConfig, GpuSim, L2Mode, PagePolicy, Topology, WarpScheduler,
};

/// A deterministic pseudo-random kernel: every warp's stream is derived
/// from `(seed, cta, warp)` by a splitmix-style generator, mixing
/// compute bursts, private streaming loads, shared-region scatter loads,
/// and stores. Degenerate warps (empty streams) are generated on purpose.
#[derive(Debug, Clone)]
struct FuzzKernel {
    seed: u64,
    ctas: u32,
    warps_per_cta: u32,
    max_instrs: u32,
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl KernelProgram for FuzzKernel {
    fn name(&self) -> &str {
        "fuzz"
    }
    fn grid(&self) -> GridShape {
        GridShape::new(self.ctas, self.warps_per_cta)
    }
    fn warp_instructions(&self, cta: CtaId, warp: WarpId) -> WarpInstrStream {
        let base = mix(self.seed ^ (u64::from(cta.0) << 20) ^ u64::from(warp.0));
        let len = (mix(base) % u64::from(self.max_instrs + 1)) as u32;
        let private = (u64::from(cta.0) * u64::from(self.warps_per_cta) + u64::from(warp.0))
            * u64::from(self.max_instrs)
            * 128;
        Box::new((0..len).map(move |i| {
            let r = mix(base.wrapping_add(u64::from(i)));
            match r % 5 {
                0 => WarpInstr::Compute(Opcode::FFma32),
                1 => WarpInstr::Compute(Opcode::IAdd32),
                2 => WarpInstr::Mem(MemRef::global_load(private + u64::from(i) * 128)),
                // A 512-line region shared by every warp: first-touch
                // races, remote traffic, L2 contention.
                3 => WarpInstr::Mem(MemRef::global_load(0x4000_0000 + (r >> 8) % 512 * 128)),
                _ => WarpInstr::Mem(MemRef::global_store(private + u64::from(i) * 128)),
            }
        }))
    }
}

/// A homogeneous kernel: every warp of every CTA runs the identical
/// pseudo-random sequence (compute plus shared-region loads and stores —
/// addresses must not depend on the warp for the sequence to be
/// uniform). With `hint`, it also advertises that sequence through
/// [`KernelProgram::uniform_warp_program`] so the engine takes the
/// shared pre-decoded path.
#[derive(Debug, Clone)]
struct UniformKernel {
    seed: u64,
    ctas: u32,
    warps_per_cta: u32,
    len: u32,
    hint: bool,
}

impl UniformKernel {
    fn instr(&self, i: u32) -> WarpInstr {
        let r = mix(self.seed.wrapping_add(u64::from(i)));
        match r % 4 {
            0 => WarpInstr::Compute(Opcode::FFma32),
            1 => WarpInstr::Compute(Opcode::IAdd32),
            2 => WarpInstr::Mem(MemRef::global_load(0x4000_0000 + (r >> 8) % 512 * 128)),
            _ => WarpInstr::Mem(MemRef::global_store(0x4000_0000 + (r >> 8) % 512 * 128)),
        }
    }
}

impl KernelProgram for UniformKernel {
    fn name(&self) -> &str {
        "uniform"
    }
    fn grid(&self) -> GridShape {
        GridShape::new(self.ctas, self.warps_per_cta)
    }
    fn warp_instructions(&self, _cta: CtaId, _warp: WarpId) -> WarpInstrStream {
        let k = self.clone();
        Box::new((0..k.len).map(move |i| k.instr(i)))
    }
    fn uniform_warp_program(&self) -> Option<Vec<WarpInstr>> {
        self.hint
            .then(|| (0..self.len).map(|i| self.instr(i)).collect())
    }
}

/// A randomized configuration drawn from the ablation space the figures
/// actually sweep (at tiny scale so each case runs in milliseconds).
fn fuzz_config(r: u64, gpms: usize) -> GpuConfig {
    let mut cfg = GpuConfig::tiny(gpms);
    cfg.cta_schedule = if r & 1 == 0 {
        CtaSchedule::Contiguous
    } else {
        CtaSchedule::RoundRobin
    };
    cfg.warp_scheduler = if r & 2 == 0 {
        WarpScheduler::LooseRoundRobin
    } else {
        WarpScheduler::GreedyThenOldest
    };
    cfg.topology = match (r >> 2) % 3 {
        0 => Topology::Ring,
        1 => Topology::Switch,
        _ => Topology::Ideal,
    };
    cfg.page_policy = if r & 8 == 0 {
        PagePolicy::FirstTouch
    } else {
        PagePolicy::Interleaved
    };
    cfg.l2_mode = if r & 16 == 0 {
        L2Mode::ModuleSide
    } else {
        L2Mode::MemorySide
    };
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline equivalence: for random kernels and configurations,
    /// the event-driven loop produces bit-identical kernel results and
    /// memory-side counters to the naive per-cycle loop.
    #[test]
    fn event_loop_matches_naive_loop(
        seed in any::<u64>(),
        cfg_bits in any::<u64>(),
        gpms in 1usize..5,
        ctas in 1u32..24,
        warps in 1u32..5,
        max_instrs in 0u32..40,
    ) {
        let cfg = fuzz_config(cfg_bits, gpms);
        let kernel = FuzzKernel { seed, ctas, warps_per_cta: warps, max_instrs };

        let mut event = GpuSim::with_mode(&cfg, EngineMode::EventDriven);
        let mut naive = GpuSim::with_mode(&cfg, EngineMode::Naive);
        event.prefault(&kernel);
        naive.prefault(&kernel);
        // Two kernels back to back: state (caches, pages, clock) carries
        // across launches and must stay in lockstep too.
        for _ in 0..2 {
            let re = event.run_kernel(&kernel);
            let rn = naive.run_kernel(&kernel);
            prop_assert_eq!(&re, &rn);
        }
        prop_assert_eq!(event.memory().txns(), naive.memory().txns());
        prop_assert_eq!(
            event.memory().inter_gpm_hop_bytes(),
            naive.memory().inter_gpm_hop_bytes()
        );
    }

    /// Resident-warp populations that straddle the scheduler's 64-bit
    /// mask word: with single-warp CTAs and capacity for 65 of them, an
    /// SM ramps through exactly 63, 64 and 65 live warps, crossing the
    /// boundary between the bitmask issue fast path (n ≤ 64) and the
    /// generic poll loop (n > 64) in both directions as warps land and
    /// retire. Both scheduler policies must stay bit-identical to the
    /// naive reference across that crossing.
    #[test]
    fn warp_counts_straddle_the_mask_word_boundary(
        seed in any::<u64>(),
        cfg_bits in any::<u64>(),
        ctas in 63u32..=66,
        max_instrs in 1u32..24,
    ) {
        let mut cfg = fuzz_config(cfg_bits, 1);
        cfg.gpm.sms = 1;
        cfg.gpm.max_resident_warps = 65;
        let kernel = FuzzKernel { seed, ctas, warps_per_cta: 1, max_instrs };

        let mut event = GpuSim::with_mode(&cfg, EngineMode::EventDriven);
        let mut naive = GpuSim::with_mode(&cfg, EngineMode::Naive);
        event.prefault(&kernel);
        naive.prefault(&kernel);
        let re = event.run_kernel(&kernel);
        let rn = naive.run_kernel(&kernel);
        prop_assert_eq!(&re, &rn);
        prop_assert_eq!(event.memory().txns(), naive.memory().txns());
    }

    /// The per-warp outstanding-load ring at its configuration extremes:
    /// `mlp_per_warp` of 1 (every load serializes, the MLP-limit stall
    /// path fires constantly) through values beyond any warp's load
    /// count (the limit never fires). The ring capacity is sized from
    /// this value, so both edges exercise its wraparound and the
    /// stall/wake re-arming identically in both loops.
    #[test]
    fn mlp_limit_extremes_stay_equivalent(
        seed in any::<u64>(),
        cfg_bits in any::<u64>(),
        mlp in prop_oneof![Just(1usize), Just(2usize), Just(16usize), Just(64usize)],
        ctas in 1u32..12,
        max_instrs in 1u32..32,
    ) {
        let mut cfg = fuzz_config(cfg_bits, 2);
        cfg.gpm.mlp_per_warp = mlp;
        let kernel = FuzzKernel { seed, ctas, warps_per_cta: 3, max_instrs };

        let mut event = GpuSim::with_mode(&cfg, EngineMode::EventDriven);
        let mut naive = GpuSim::with_mode(&cfg, EngineMode::Naive);
        event.prefault(&kernel);
        naive.prefault(&kernel);
        let re = event.run_kernel(&kernel);
        let rn = naive.run_kernel(&kernel);
        prop_assert_eq!(&re, &rn);
        prop_assert_eq!(event.memory().txns(), naive.memory().txns());
    }

    /// The `uniform_warp_program` hint must be invisible in results: a
    /// homogeneous kernel simulated through the shared pre-decoded
    /// array gives the same bits as the identical kernel decoded warp
    /// by warp through boxed iterators (both engine loops).
    #[test]
    fn uniform_program_hint_is_unobservable(
        seed in any::<u64>(),
        cfg_bits in any::<u64>(),
        gpms in 1usize..4,
        ctas in 1u32..16,
        warps in 1u32..5,
        len in 0u32..40,
    ) {
        let cfg = fuzz_config(cfg_bits, gpms);
        let hinted = UniformKernel { seed, ctas, warps_per_cta: warps, len, hint: true };
        let plain = UniformKernel { hint: false, ..hinted.clone() };

        for mode in [EngineMode::EventDriven, EngineMode::Naive] {
            let mut with_hint = GpuSim::with_mode(&cfg, mode);
            let mut without = GpuSim::with_mode(&cfg, mode);
            with_hint.prefault(&hinted);
            without.prefault(&plain);
            let rh = with_hint.run_kernel(&hinted);
            let rp = without.run_kernel(&plain);
            prop_assert_eq!(&rh, &rp);
            prop_assert_eq!(with_hint.memory().txns(), without.memory().txns());
        }
    }

    /// The parallel sharded engine is bit-identical to the serial
    /// event-driven engine — same kernel results (clock, instruction
    /// and transaction counts, hop bytes, and therefore the same energy
    /// breakdown, which is a pure function of these counts) — across
    /// random kernels, configurations (both schedulers, all
    /// topologies), GPM counts, MLP extremes, and thread counts,
    /// including kernel-after-kernel state carry-over. This is the
    /// determinism contract of DESIGN.md §17.
    #[test]
    fn parallel_engine_matches_event_driven(
        seed in any::<u64>(),
        cfg_bits in any::<u64>(),
        gpms in 1usize..5,
        threads in 1usize..7,
        mlp in prop_oneof![Just(1usize), Just(4usize), Just(64usize)],
        ctas in 1u32..24,
        warps in 1u32..5,
        max_instrs in 0u32..40,
    ) {
        let mut cfg = fuzz_config(cfg_bits, gpms);
        cfg.gpm.mlp_per_warp = mlp;
        let kernel = FuzzKernel { seed, ctas, warps_per_cta: warps, max_instrs };

        let mut event = GpuSim::with_mode(&cfg, EngineMode::EventDriven);
        let mut par = GpuSim::with_mode(&cfg, EngineMode::Parallel);
        par.set_sim_threads(Some(threads));
        event.prefault(&kernel);
        par.prefault(&kernel);
        for _ in 0..2 {
            let re = event.run_kernel(&kernel);
            let rp = par.run_kernel(&kernel);
            prop_assert_eq!(&rp, &re);
        }
        prop_assert_eq!(par.memory().txns(), event.memory().txns());
        prop_assert_eq!(
            par.memory().inter_gpm_hop_bytes(),
            event.memory().inter_gpm_hop_bytes()
        );
    }

    /// Degenerate shard shapes: a single GPM (one shard, run inline on
    /// the caller thread, no worker pool) and a thread count that far
    /// exceeds the GPM count (shard count clamps to the GPM count, one
    /// GPM per shard). Both must remain bit-identical to the serial
    /// event-driven engine.
    #[test]
    fn parallel_degenerate_shards_stay_equivalent(
        seed in any::<u64>(),
        cfg_bits in any::<u64>(),
        single_gpm in any::<bool>(),
        ctas in 1u32..16,
        warps in 1u32..4,
        max_instrs in 0u32..32,
    ) {
        let gpms = if single_gpm { 1 } else { 3 };
        let cfg = fuzz_config(cfg_bits, gpms);
        let kernel = FuzzKernel { seed, ctas, warps_per_cta: warps, max_instrs };

        let mut event = GpuSim::with_mode(&cfg, EngineMode::EventDriven);
        let mut par = GpuSim::with_mode(&cfg, EngineMode::Parallel);
        par.set_sim_threads(Some(16));
        event.prefault(&kernel);
        par.prefault(&kernel);
        let re = event.run_kernel(&kernel);
        let rp = par.run_kernel(&kernel);
        prop_assert_eq!(&rp, &re);
        prop_assert_eq!(par.memory().txns(), event.memory().txns());
    }

    /// `EngineMode::ShadowPar` re-runs every kernel on the naive
    /// reference and asserts internally; surviving a fuzzed workload is
    /// itself the property. The visible result must equal the
    /// event-driven engine's.
    #[test]
    fn shadow_par_mode_survives_fuzzed_kernels(
        seed in any::<u64>(),
        cfg_bits in any::<u64>(),
        gpms in 1usize..4,
        ctas in 1u32..12,
        max_instrs in 0u32..24,
    ) {
        let cfg = fuzz_config(cfg_bits, gpms);
        let kernel = FuzzKernel { seed, ctas, warps_per_cta: 2, max_instrs };
        let mut shadow = GpuSim::with_mode(&cfg, EngineMode::ShadowPar);
        shadow.set_sim_threads(Some(2));
        let mut event = GpuSim::with_mode(&cfg, EngineMode::EventDriven);
        shadow.prefault(&kernel);
        event.prefault(&kernel);
        prop_assert_eq!(shadow.run_kernel(&kernel), event.run_kernel(&kernel));
    }

    /// Fast-forward must never jump past a cycle where a warp becomes
    /// ready. The loop itself debug-asserts exactly this on every jump
    /// (active in this test build); shadow mode additionally re-runs the
    /// naive reference and asserts bit-equality, so a skipped wake-up
    /// cannot hide. On top, the fast-forward accounting must close:
    /// visited + skipped cycles together tile the kernel's cycle span.
    #[test]
    fn fast_forward_never_skips_a_ready_event(
        seed in any::<u64>(),
        cfg_bits in any::<u64>(),
        ctas in 1u32..16,
        max_instrs in 0u32..32,
    ) {
        let cfg = fuzz_config(cfg_bits, 2);
        let kernel = FuzzKernel { seed, ctas, warps_per_cta: 2, max_instrs };
        let mut sim = GpuSim::with_mode(&cfg, EngineMode::Shadow);
        sim.prefault(&kernel);
        let result = sim.run_kernel(&kernel);
        let ff = sim.fast_forward_stats();
        // Every calendar cycle of the loop is either visited or skipped
        // by a jump; the kernel-boundary flush may extend the clock past
        // the last visited cycle but never shrink it.
        prop_assert!(
            ff.visited_cycles + ff.skipped_cycles <= result.cycles + 1,
            "visited {} + skipped {} overruns {} kernel cycles",
            ff.visited_cycles,
            ff.skipped_cycles,
            result.cycles
        );
        prop_assert!(ff.sm_steps <= ff.visited_cycles * cfg.total_sms() as u64);
    }
}
