//! First-touch page placement.
//!
//! Multi-module GPUs place each memory page on the module whose SM first
//! touches it (the policy the paper adopts from the MCM-GPU and NUMA-GPU
//! work). Combined with contiguous CTA partitioning this captures most
//! private-data locality; shared/streamed structures end up distributed.

use crate::config::PagePolicy;
use common::{GpmId, PageId};
use std::collections::HashMap;

/// First-touch page table mapping pages to their home GPM.
///
/// # Examples
///
/// ```
/// use sim::pages::PageTable;
/// use common::GpmId;
///
/// let mut pt = PageTable::new(64 * 1024);
/// let home = pt.home_of(0x1_0000, GpmId::new(3));
/// assert_eq!(home, GpmId::new(3));
/// // Subsequent touches from other modules see the established home.
/// assert_eq!(pt.home_of(0x1_0040, GpmId::new(0)), GpmId::new(3));
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    page_bytes: u64,
    map: HashMap<PageId, GpmId>,
    first_touches: u64,
    policy: PagePolicy,
    num_gpms: usize,
}

impl PageTable {
    /// Creates a first-touch page table with the given page size.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is zero.
    pub fn new(page_bytes: u64) -> Self {
        Self::with_policy(page_bytes, PagePolicy::FirstTouch, 1)
    }

    /// Creates a page table with an explicit placement policy.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` or `num_gpms` is zero.
    pub fn with_policy(page_bytes: u64, policy: PagePolicy, num_gpms: usize) -> Self {
        assert!(page_bytes > 0, "page size must be non-zero");
        assert!(num_gpms > 0, "a GPU needs at least one GPM");
        PageTable {
            page_bytes,
            map: HashMap::new(),
            first_touches: 0,
            policy,
            num_gpms,
        }
    }

    /// The placement policy.
    pub fn policy(&self) -> PagePolicy {
        self.policy
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// Returns the home GPM of the page containing `addr`. Under
    /// first-touch placement, an unplaced page is assigned to `toucher`;
    /// under interleaving the home is a pure function of the page number.
    pub fn home_of(&mut self, addr: u64, toucher: GpmId) -> GpmId {
        let page = PageId::containing(addr, self.page_bytes);
        match self.policy {
            PagePolicy::FirstTouch => *self.map.entry(page).or_insert_with(|| {
                self.first_touches += 1;
                toucher
            }),
            PagePolicy::Interleaved => GpmId::new((page.number() % self.num_gpms as u64) as u16),
        }
    }

    /// Home of the page containing `addr`, if determined.
    pub fn lookup(&self, addr: u64) -> Option<GpmId> {
        let page = PageId::containing(addr, self.page_bytes);
        match self.policy {
            PagePolicy::FirstTouch => self.map.get(&page).copied(),
            PagePolicy::Interleaved => {
                Some(GpmId::new((page.number() % self.num_gpms as u64) as u16))
            }
        }
    }

    /// Number of placed pages.
    pub fn placed_pages(&self) -> usize {
        self.map.len()
    }

    /// Pages homed on each GPM, for balance diagnostics.
    pub fn pages_per_gpm(&self, num_gpms: usize) -> Vec<usize> {
        let mut counts = vec![0usize; num_gpms];
        for home in self.map.values() {
            if home.index() < num_gpms {
                counts[home.index()] += 1;
            }
        }
        counts
    }

    /// Clears all placements (a fresh workload: fresh allocations).
    pub fn clear(&mut self) {
        self.map.clear();
        self.first_touches = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_wins() {
        let mut pt = PageTable::new(4096);
        assert_eq!(pt.home_of(0, GpmId::new(1)), GpmId::new(1));
        assert_eq!(pt.home_of(100, GpmId::new(2)), GpmId::new(1));
        assert_eq!(pt.home_of(4096, GpmId::new(2)), GpmId::new(2));
        assert_eq!(pt.placed_pages(), 2);
    }

    #[test]
    fn lookup_does_not_place() {
        let pt = PageTable::new(4096);
        assert_eq!(pt.lookup(0), None);
        let mut pt = pt;
        pt.home_of(0, GpmId::new(0));
        assert_eq!(pt.lookup(5), Some(GpmId::new(0)));
    }

    #[test]
    fn pages_per_gpm_counts_balance() {
        let mut pt = PageTable::new(4096);
        pt.home_of(0, GpmId::new(0));
        pt.home_of(4096, GpmId::new(1));
        pt.home_of(8192, GpmId::new(1));
        assert_eq!(pt.pages_per_gpm(2), vec![1, 2]);
    }

    #[test]
    fn clear_resets_placements() {
        let mut pt = PageTable::new(4096);
        pt.home_of(0, GpmId::new(1));
        pt.clear();
        assert_eq!(pt.placed_pages(), 0);
        assert_eq!(pt.home_of(0, GpmId::new(0)), GpmId::new(0));
    }

    #[test]
    #[should_panic(expected = "page size")]
    fn zero_page_size_panics() {
        let _ = PageTable::new(0);
    }
}
