#![deny(missing_docs)]

//! Cycle-level, trace-driven multi-module (NUMA) GPU performance
//! simulator.
//!
//! This crate is the performance-simulation substrate of the study — the
//! stand-in for the proprietary NVIDIA simulator the paper pairs with
//! GPUJoule (§V-A). It models the features the paper calls out as
//! essential:
//!
//! * warp and thread-block scheduling with warp-level latency tolerance,
//! * a multi-level memory hierarchy (per-SM L1s, per-GPM module-side L2s,
//!   per-GPM HBM stacks) with software-based coherence of private caches,
//! * distributed (contiguous) CTA scheduling and first-touch page
//!   placement across modules,
//! * ring and high-radix-switch inter-GPM networks with per-link
//!   bandwidth accounting and per-hop byte counting,
//! * the Table III/IV configuration space (1–32 GPMs, 1x/2x/4x-BW).
//!
//! Output is an [`isa::EventCounts`] per kernel — exactly the `IC`/`TC`/
//! `stalls`/time inputs GPUJoule's Eq. 4 consumes.
//!
//! # Examples
//!
//! ```
//! use sim::{BwSetting, GpuConfig, GpuSim, Topology};
//!
//! let cfg = GpuConfig::paper(8, BwSetting::X2, Topology::Ring);
//! assert_eq!(cfg.total_sms(), 128);
//! let sim = GpuSim::new(&cfg);
//! assert_eq!(sim.config().num_gpms, 8);
//! ```

pub mod bits;
pub mod bw;
pub mod cache;
pub mod config;
pub mod engine;
pub mod inflight;
pub mod memory;
pub mod noc;
pub mod pages;
pub mod par;
pub mod results;

pub use bits::BitWords;
pub use config::{
    BwSetting, CtaSchedule, GpmConfig, GpuConfig, L2Mode, PagePolicy, Topology, WarpScheduler,
};
pub use engine::{EngineMode, FastForwardStats, GpuSim, SoaStats};
pub use inflight::InflightTable;
pub use memory::{MemOutcome, MemorySystem, UtilizationReport};
pub use par::{ParStats, SIM_THREADS_ENV};
pub use results::{KernelResult, WorkloadResult};
