//! Simulation results: per-kernel and per-workload event summaries.

use common::units::Time;
use isa::EventCounts;
use std::fmt;

/// The outcome of simulating one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelResult {
    /// Kernel name.
    pub name: String,
    /// Event counts for this launch (including `elapsed`).
    pub counts: EventCounts,
    /// Core cycles the launch took.
    pub cycles: u64,
    /// CTAs executed.
    pub ctas: u32,
}

impl KernelResult {
    /// Wall-clock duration of the launch.
    pub fn duration(&self) -> Time {
        self.counts.elapsed
    }
}

impl fmt::Display for KernelResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} cycles, {}", self.name, self.cycles, self.counts)
    }
}

/// The outcome of simulating a whole workload (a sequence of launches).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkloadResult {
    /// Per-launch results, in execution order.
    pub kernels: Vec<KernelResult>,
}

impl WorkloadResult {
    /// Aggregated event counts across all launches (sequential
    /// composition: counts and elapsed time sum).
    pub fn total_counts(&self) -> EventCounts {
        let mut total = EventCounts::new();
        for k in &self.kernels {
            total.merge_sequential(&k.counts);
        }
        total
    }

    /// Total wall-clock duration.
    pub fn total_duration(&self) -> Time {
        self.kernels.iter().map(|k| k.counts.elapsed).sum()
    }

    /// Total simulated core cycles.
    pub fn total_cycles(&self) -> u64 {
        self.kernels.iter().map(|k| k.cycles).sum()
    }

    /// Number of kernel launches.
    pub fn launches(&self) -> usize {
        self.kernels.len()
    }
}

impl fmt::Display for WorkloadResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} launches, {} cycles, {}",
            self.launches(),
            self.total_cycles(),
            self.total_duration()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::Opcode;

    fn kr(name: &str, cycles: u64, instrs: u64) -> KernelResult {
        let mut counts = EventCounts::new();
        counts.instrs.add(Opcode::FAdd32, instrs);
        counts.elapsed = Time::from_nanos(cycles as f64);
        KernelResult {
            name: name.into(),
            counts,
            cycles,
            ctas: 1,
        }
    }

    #[test]
    fn totals_aggregate_sequentially() {
        let w = WorkloadResult {
            kernels: vec![kr("a", 100, 5), kr("b", 200, 7)],
        };
        assert_eq!(w.total_cycles(), 300);
        assert_eq!(w.launches(), 2);
        assert_eq!(w.total_counts().instrs.get(Opcode::FAdd32), 12);
        assert!((w.total_duration().nanos() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn empty_workload_is_zero() {
        let w = WorkloadResult::default();
        assert_eq!(w.total_cycles(), 0);
        assert_eq!(w.total_counts().total_instructions(), 0);
    }

    #[test]
    fn display_formats() {
        let w = WorkloadResult {
            kernels: vec![kr("a", 10, 1)],
        };
        assert!(w.to_string().contains("1 launches"));
        assert!(kr("a", 10, 1).to_string().contains("a: 10 cycles"));
    }
}
