//! The cycle-level execution engine.
//!
//! Each SM keeps up to `max_resident_warps` warps from a handful of
//! resident CTAs and issues up to `issue_width` warp instructions per
//! cycle, round-robin among ready warps (a GTO-less but
//! latency-tolerance-faithful scheduler). Warps block on loads; stores
//! retire through the write buffer.
//!
//! CTAs are partitioned contiguously across GPMs (distributed, locality-
//! aware thread-block scheduling per MCM-GPU), then handed to SMs within
//! a module on demand.
//!
//! # The event-driven hot path
//!
//! The paper's §V scaling study reruns this engine across 1–32 GPMs ×
//! 3 bandwidths × topologies, and the bandwidth-bound workloads that
//! drive Figures 2 and 6 spend most of their cycles with every warp
//! stalled on memory. Two clock-advance strategies are implemented,
//! selectable per [`GpuSim`] via [`EngineMode`]:
//!
//! * [`EngineMode::Naive`] — the reference loop: every SM is scanned on
//!   every visited cycle; when no warp anywhere can issue, the clock
//!   jumps to the minimum `WarpPool::next_ready` wake-up, charging
//!   the skipped cycles as memory-wait (stall) time.
//! * [`EngineMode::EventDriven`] (the default) — per-SM wake times: an
//!   SM whose earliest ready warp lies in the future (and which cannot
//!   accept a CTA) *sleeps*, is skipped entirely — no warp scan, no
//!   scheduler sort — and is charged its idle/stall cycles lazily when
//!   it next wakes. Memory and NoC wake-ups need no separate queue scan
//!   because every queue-drain time is already reflected in some warp's
//!   `ready_at`/`outstanding` timestamps when the access is issued.
//!
//! Both strategies visit the *same* cycle sequence, issue the *same*
//! memory accesses in the *same* order, and accumulate the *same*
//! [`EventCounts`] — bit-for-bit. [`EngineMode::Shadow`] enforces this:
//! it runs both loops on cloned machine state and asserts the results
//! (and the memory-side counters) are identical. The equivalence
//! argument is written out in DESIGN.md §12; the `event_equivalence`
//! proptests and the repo-level golden test pin it in CI.

use crate::bits::BitWords;
use crate::config::GpuConfig;
use crate::memory::MemorySystem;
use crate::results::{KernelResult, WorkloadResult};
use common::{CtaId, GpmId, SmId, WarpId};
use isa::{EventCounts, KernelProgram, LaunchSpec, PredecodedStream, WarpInstr, WARP_SIZE};
use std::sync::Arc;

/// Sentinel for "no warp slot" in the intrusive GTO list and the greedy
/// pointer.
const NONE: u32 = u32::MAX;

/// A memory access recorded — not performed — by a shard running under
/// [`MemSink::Defer`]: warp slot `g` of the shard's local pool issued
/// `mref` this cycle. The parallel coordinator replays these against
/// the one true [`MemorySystem`] in canonical order (ascending shard,
/// then the shard's recorded poll order), which is exactly the order
/// the serial engine performs them — so every memory-side state
/// transition is bit-identical (DESIGN.md §17).
#[derive(Debug, Clone, Copy)]
pub(crate) struct DeferredAccess {
    /// Warp-slot index into the *shard-local* pool (`flat * stride + s`).
    pub(crate) g: u32,
    /// The access itself.
    pub(crate) mref: isa::MemRef,
}

/// Placeholder ring entry for a deferred load: real completion times
/// are always strictly greater than `now` and far below `u64::MAX`, so
/// the placeholder keeps the ring occupancy (the MLP limit, the
/// cannot-retire-with-loads-in-flight rule) exact while being
/// recognizable for replacement during the merge.
pub(crate) const DEFER_PLACEHOLDER: u64 = u64::MAX;

/// Where the issue path sends memory accesses: straight into the memory
/// system (the serial engines), or into a per-shard queue the parallel
/// coordinator replays in canonical order at the end of the epoch's
/// compute phase.
pub(crate) enum MemSink<'a> {
    /// Perform each access immediately (serial loops).
    Direct(&'a mut MemorySystem),
    /// Record each access for the end-of-epoch ordered replay (parallel
    /// shards). The warp state written alongside is provisional; the
    /// replay ([`merge_deferred`]) fixes it up before anything can
    /// observe it.
    Defer(&'a mut Vec<DeferredAccess>),
}

/// CTA-to-module partition under a scheduling policy.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CtaPartition {
    schedule: crate::config::CtaSchedule,
    ctas: usize,
    pub(crate) num_gpms: usize,
    per_gpm: usize,
}

impl CtaPartition {
    fn new(schedule: crate::config::CtaSchedule, ctas: usize, num_gpms: usize) -> Self {
        CtaPartition {
            schedule,
            ctas,
            num_gpms,
            per_gpm: ctas.div_ceil(num_gpms),
        }
    }

    /// The module CTA `cta` runs on.
    fn gpm_of(&self, cta: usize) -> usize {
        match self.schedule {
            crate::config::CtaSchedule::Contiguous => (cta / self.per_gpm).min(self.num_gpms - 1),
            crate::config::CtaSchedule::RoundRobin => cta % self.num_gpms,
        }
    }

    /// The `k`-th CTA assigned to module `gpm`, if any remain.
    fn nth_for(&self, gpm: usize, k: usize) -> Option<usize> {
        let cta = match self.schedule {
            crate::config::CtaSchedule::Contiguous => {
                let cta = gpm * self.per_gpm + k;
                if cta >= ((gpm + 1) * self.per_gpm).min(self.ctas) {
                    return None;
                }
                cta
            }
            crate::config::CtaSchedule::RoundRobin => gpm + k * self.num_gpms,
        };
        (cta < self.ctas).then_some(cta)
    }
}

/// All warp and resident-CTA runtime state for every SM, as GPU-global
/// struct-of-arrays columns.
///
/// A warp slot is addressed by `g = flat * stride + s`, where `flat` is
/// the SM's flat index, `stride` is the per-SM slot capacity
/// (`max_ctas_per_sm * warps_per_cta` — an SM can never hold more live
/// warps than that, so slots never grow), and `s` is the SM-local slot
/// id stored in the per-SM `order`/`free`/GTO structures. One
/// allocation per column for the whole GPU keeps the per-cycle SM walk
/// inside a handful of contiguous arrays instead of chasing hundreds of
/// per-SM heap objects — the difference between an L2-resident working
/// set and a pointer-chasing miss per touched field.
///
/// The columns carry no notion of liveness or ordering; the side
/// structures do:
///
/// * `order` + `order_len` — per-SM slabs of slot ids in the *physical*
///   order the historical `Vec<WarpRun>` kept them (push on launch,
///   `swap_remove` on retire). Loose round-robin indexes this list, so
///   preserving its exact evolution keeps LRR issue order — which is
///   observable through memory-access ordering — bit-identical to the
///   seed.
/// * `gto_head`/`gto_tail`/`gto_next`/`gto_prev` — an age-ascending
///   intrusive doubly-linked list per SM. Warp ages are unique and
///   monotonic and new warps append at the tail, so walking the list
///   *is* the `sort_by_key(age)` order the GTO scheduler used to
///   compute per cycle; `greedy` (cleared on retire — ages are never
///   reused) stands in for the old `greedy_age` match.
/// * `exhausted` (+ per-SM `exhausted_cnt`) — warp slots whose stream
///   is exhausted (the old `pending == None`): when an SM's count is
///   zero, its whole retire scan is skipped.
/// * `cta_free` (+ per-SM `cta_free_cnt`) — free resident-CTA slots;
///   `first_set_in` over the SM's sub-range is the old find-first-free
///   scan.
///
/// A warp's in-flight loads live in a fixed-capacity inline ring:
/// `mlp_cap` contiguous entries of `out_times` per slot, with the live
/// count in `out_len` — no per-warp heap allocation.
///
/// Slot ids themselves are unobservable: issue order is decided only by
/// `order` and the GTO list, so the free-stack recycling order (which
/// differs between a fresh pool and one reused across kernels) cannot
/// influence results. The `event_equivalence` proptests and
/// [`EngineMode::Shadow`] (whose reference sim always starts from a
/// fresh pool) pin this.
#[derive(Default)]
struct WarpPool {
    total_sms: usize,
    /// Warp slots per SM.
    stride: usize,
    /// Resident-CTA slots per SM.
    cta_stride: usize,
    /// In-flight-load ring capacity per warp slot (≥ 1).
    mlp_cap: usize,

    // ---- Warp columns, global index g = flat * stride + s ----
    /// Pre-decoded instruction stream per warp slot.
    streams: Vec<PredecodedStream>,
    /// The warp's next instruction (the old `pending: Option<WarpInstr>`),
    /// cached inline so the issue scan never touches the decode window.
    pending: Vec<Option<WarpInstr>>,
    /// Cycle the warp can next issue (or finishes draining).
    ready_at: Vec<u64>,
    /// Launch order on this SM (for greedy-then-oldest scheduling).
    age: Vec<u64>,
    /// Resident-CTA slot the warp belongs to.
    cta_of: Vec<u32>,
    /// Age-order intrusive list: next/prev SM-local slot (or [`NONE`]).
    gto_next: Vec<u32>,
    gto_prev: Vec<u32>,
    /// Inline rings: completion times of loads in flight, `mlp_cap`
    /// entries per warp slot (`g * mlp_cap + r`).
    out_times: Vec<u64>,
    /// Live entries in each warp's ring.
    out_len: Vec<u32>,
    /// Warp slots whose stream is exhausted.
    exhausted: BitWords,

    // ---- Per-SM slabs, `stride` entries each at `flat * stride` ----
    /// Live warps in historical `Vec<WarpRun>` physical order.
    order: Vec<u32>,
    /// Reusable warp slots (a stack growing upward).
    free: Vec<u32>,

    // ---- Per-SM scalar columns ----
    order_len: Vec<u32>,
    free_len: Vec<u32>,
    exhausted_cnt: Vec<u32>,
    /// Oldest / youngest live warp slot (or [`NONE`]).
    gto_head: Vec<u32>,
    gto_tail: Vec<u32>,
    /// Slot the GTO policy is currently greedy on (or [`NONE`]).
    greedy: Vec<u32>,
    /// Loose-round-robin start pointer.
    rr: Vec<u32>,
    /// Monotonic warp-launch counter (ages for GTO).
    next_age: Vec<u64>,

    // ---- CTA columns, index flat * cta_stride + c ----
    /// Live warps per resident-CTA slot.
    cta_live: Vec<u32>,
    /// Resident-CTA slots with no live warps.
    cta_free: BitWords,
    cta_free_cnt: Vec<u32>,
}

impl WarpPool {
    /// Prepares the pool for a fresh kernel. A shape change (SM count,
    /// slot capacity, CTA slots, or MLP ring size) rebuilds every
    /// column; otherwise only the per-SM scheduler scalars are rewound
    /// — every kernel retires all its warps and frees all its CTA slots
    /// before its loop exits, so the bulk state is already clean
    /// (debug builds verify this).
    fn reset(&mut self, total_sms: usize, stride: usize, cta_stride: usize, mlp_cap: usize) {
        debug_assert!(mlp_cap >= 1);
        if self.total_sms != total_sms
            || self.stride != stride
            || self.cta_stride != cta_stride
            || self.mlp_cap != mlp_cap
        {
            self.total_sms = total_sms;
            self.stride = stride;
            self.cta_stride = cta_stride;
            self.mlp_cap = mlp_cap;
            let slots = total_sms * stride;
            for pd in &mut self.streams {
                pd.release();
            }
            self.streams.resize_with(slots, PredecodedStream::new);
            self.pending.clear();
            self.pending.resize(slots, None);
            self.ready_at.clear();
            self.ready_at.resize(slots, 0);
            self.age.clear();
            self.age.resize(slots, 0);
            self.cta_of.clear();
            self.cta_of.resize(slots, 0);
            self.gto_next.clear();
            self.gto_next.resize(slots, NONE);
            self.gto_prev.clear();
            self.gto_prev.resize(slots, NONE);
            self.out_times.clear();
            self.out_times.resize(slots * mlp_cap, 0);
            self.out_len.clear();
            self.out_len.resize(slots, 0);
            self.exhausted = BitWords::with_capacity(slots);
            self.order.clear();
            self.order.resize(slots, 0);
            // Free stacks pop from the top: descending ids per SM make
            // allocation hand out 0, 1, 2, … exactly like the
            // historical `Vec` push order on first use.
            self.free.clear();
            self.free.reserve(slots);
            for _ in 0..total_sms {
                self.free.extend((0..stride as u32).rev());
            }
            self.order_len.clear();
            self.order_len.resize(total_sms, 0);
            self.free_len.clear();
            self.free_len.resize(total_sms, stride as u32);
            self.exhausted_cnt.clear();
            self.exhausted_cnt.resize(total_sms, 0);
            self.gto_head.clear();
            self.gto_head.resize(total_sms, NONE);
            self.gto_tail.clear();
            self.gto_tail.resize(total_sms, NONE);
            self.greedy.clear();
            self.greedy.resize(total_sms, NONE);
            self.rr.clear();
            self.rr.resize(total_sms, 0);
            self.next_age.clear();
            self.next_age.resize(total_sms, 0);
            let cta_slots = total_sms * cta_stride;
            self.cta_live.clear();
            self.cta_live.resize(cta_slots, 0);
            self.cta_free = BitWords::with_capacity(cta_slots);
            for b in 0..cta_slots {
                self.cta_free.set(b);
            }
            self.cta_free_cnt.clear();
            self.cta_free_cnt.resize(total_sms, cta_stride as u32);
            return;
        }
        #[cfg(debug_assertions)]
        for flat in 0..total_sms {
            debug_assert_eq!(self.order_len[flat], 0, "pool reused with live warps");
            debug_assert_eq!(self.free_len[flat] as usize, stride);
            debug_assert_eq!(self.exhausted_cnt[flat], 0);
            debug_assert_eq!(self.gto_head[flat], NONE);
            debug_assert_eq!(self.cta_free_cnt[flat] as usize, cta_stride);
        }
        self.rr.fill(0);
        self.next_age.fill(0);
        self.greedy.fill(NONE);
    }

    /// Launches one warp on SM `flat`: adopts its stream into a
    /// (reused) slot, links it at the GTO tail, and appends it to the
    /// physical order. Returns `false` for a degenerate empty stream
    /// (the warp retires instantly, exactly like the old
    /// `pending == None` launch path; the slot is not consumed).
    fn alloc_warp(
        &mut self,
        flat: usize,
        reset: impl FnOnce(&mut PredecodedStream) -> bool,
        cta: u32,
        now: u64,
    ) -> bool {
        let wbase = flat * self.stride;
        let fl = self.free_len[flat] as usize;
        debug_assert!(fl > 0, "warp slot capacity exceeded");
        let s = self.free[wbase + fl - 1];
        let g = wbase + s as usize;
        if !reset(&mut self.streams[g]) {
            return false;
        }
        self.free_len[flat] = (fl - 1) as u32;
        self.pending[g] = self.streams[g].current();
        self.ready_at[g] = now;
        let a = self.next_age[flat];
        self.age[g] = a;
        self.next_age[flat] = a + 1;
        self.cta_of[g] = cta;
        self.out_len[g] = 0;
        let tail = self.gto_tail[flat];
        self.gto_prev[g] = tail;
        self.gto_next[g] = NONE;
        if tail != NONE {
            self.gto_next[wbase + tail as usize] = s;
        } else {
            self.gto_head[flat] = s;
        }
        self.gto_tail[flat] = s;
        let ol = self.order_len[flat] as usize;
        self.order[wbase + ol] = s;
        self.order_len[flat] = (ol + 1) as u32;
        true
    }

    /// Unlinks a retiring warp from the GTO list and returns its slot
    /// to the free stack. The caller removes it from `order`. Only
    /// called on exhausted warps.
    fn retire_slot(&mut self, flat: usize, s: u32) {
        let wbase = flat * self.stride;
        let g = wbase + s as usize;
        let (p, n) = (self.gto_prev[g], self.gto_next[g]);
        if p != NONE {
            self.gto_next[wbase + p as usize] = n;
        } else {
            self.gto_head[flat] = n;
        }
        if n != NONE {
            self.gto_prev[wbase + n as usize] = p;
        } else {
            self.gto_tail[flat] = p;
        }
        if self.greedy[flat] == s {
            // Ages are never reused, so the old `greedy_age` could never
            // match another warp once its owner retired; clearing the
            // slot pointer is the exact equivalent.
            self.greedy[flat] = NONE;
        }
        self.exhausted.unset(g);
        self.exhausted_cnt[flat] -= 1;
        self.streams[g].release();
        self.pending[g] = None;
        let fl = self.free_len[flat] as usize;
        self.free[wbase + fl] = s;
        self.free_len[flat] = (fl + 1) as u32;
    }

    /// First free resident-CTA slot on SM `flat` (SM-local index) — the
    /// old find-first-free scan, now a masked word probe.
    fn cta_first_free(&self, flat: usize) -> Option<usize> {
        let cbase = flat * self.cta_stride;
        self.cta_free
            .first_set_in(cbase, self.cta_stride)
            .map(|b| b - cbase)
    }

    /// Drops ring entries at or before `now` (loads that have landed),
    /// preserving order — the old `outstanding.retain(|&t| t > now)`.
    fn ring_retain(&mut self, g: usize, now: u64) {
        let base = g * self.mlp_cap;
        let len = self.out_len[g] as usize;
        let mut w = 0;
        for r in 0..len {
            let t = self.out_times[base + r];
            if t > now {
                self.out_times[base + w] = t;
                w += 1;
            }
        }
        self.out_len[g] = w as u32;
    }

    fn ring_push(&mut self, g: usize, t: u64) {
        let base = g * self.mlp_cap;
        let len = self.out_len[g] as usize;
        debug_assert!(len < self.mlp_cap, "outstanding ring overflow");
        self.out_times[base + len] = t;
        self.out_len[g] = (len + 1) as u32;
    }

    /// Replaces the single [`DEFER_PLACEHOLDER`] entry in warp `g`'s
    /// ring with the real completion time the merge just learned. A
    /// warp issues at most one instruction per cycle, so at most one
    /// placeholder ever exists per ring.
    fn ring_replace_placeholder(&mut self, g: usize, t: u64) {
        debug_assert!(t < DEFER_PLACEHOLDER);
        let base = g * self.mlp_cap;
        for r in 0..self.out_len[g] as usize {
            if self.out_times[base + r] == DEFER_PLACEHOLDER {
                self.out_times[base + r] = t;
                return;
            }
        }
        debug_assert!(false, "deferred load left no placeholder in the ring");
    }

    fn ring_min(&self, g: usize) -> Option<u64> {
        let base = g * self.mlp_cap;
        self.out_times[base..base + self.out_len[g] as usize]
            .iter()
            .copied()
            .min()
    }

    fn ring_max(&self, g: usize) -> Option<u64> {
        let base = g * self.mlp_cap;
        self.out_times[base..base + self.out_len[g] as usize]
            .iter()
            .copied()
            .max()
    }

    /// Post-step, every warp in `order` is live (the retire pass runs
    /// each step), so residency is just non-emptiness.
    fn resident(&self, flat: usize) -> bool {
        self.order_len[flat] > 0
    }

    /// Earliest cycle any of SM `flat`'s live warps becomes ready (or
    /// finishes draining); `u64::MAX` when it has none.
    fn next_ready(&self, flat: usize) -> u64 {
        let wbase = flat * self.stride;
        let n = self.order_len[flat] as usize;
        let mut m = u64::MAX;
        for &s in &self.order[wbase..wbase + n] {
            m = m.min(self.ready_at[wbase + s as usize]);
        }
        m
    }
}

/// How [`GpuSim::run_kernel`] advances the simulated clock.
///
/// All modes produce bit-identical [`KernelResult`]s; they differ only in
/// wall-clock cost. The default is read once per process from the
/// `MMGPU_SIM_ENGINE` environment variable (`event`, `naive`, `shadow`,
/// `parallel`, or `shadow-par`), falling back to
/// [`EngineMode::EventDriven`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Per-SM wake times with fast-forward over sleeping SMs (the
    /// default; fastest single-threaded, especially for memory-bound
    /// multi-GPM runs).
    #[default]
    EventDriven,
    /// The reference per-cycle loop that scans every SM on every visited
    /// cycle (slow; kept as the ground truth the other modes are checked
    /// against).
    Naive,
    /// Runs *both* loops on cloned machine state and asserts their
    /// results and memory-side counters are identical (slowest; for
    /// validation runs and CI equivalence smokes).
    Shadow,
    /// Shards the GPMs of *one* simulation across worker threads in
    /// lockstep epochs, merging memory traffic in canonical order at an
    /// epoch barrier — bit-identical to [`EngineMode::EventDriven`] by
    /// construction (the determinism contract is DESIGN.md §17). Thread
    /// count comes from [`GpuSim::set_sim_threads`] or
    /// `MMGPU_SIM_THREADS`.
    Parallel,
    /// Runs the parallel engine on `self` and the naive reference on
    /// cloned machine state, asserting results and memory-side counters
    /// are identical (validation runs and CI smokes for the parallel
    /// engine).
    ShadowPar,
}

/// The concrete cycle loop [`GpuSim::run_kernel_with`] dispatches to —
/// the shadow modes resolve to one of these plus a reference run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoopKind {
    Naive,
    Event,
    Parallel,
}

impl EngineMode {
    /// The process-wide default: `MMGPU_SIM_ENGINE` if set and valid,
    /// otherwise [`EngineMode::EventDriven`]. Read once and cached.
    pub fn from_env() -> EngineMode {
        use std::sync::OnceLock;
        static MODE: OnceLock<EngineMode> = OnceLock::new();
        *MODE.get_or_init(|| match std::env::var("MMGPU_SIM_ENGINE") {
            Ok(v) => match v.as_str() {
                "event" | "event-driven" => EngineMode::EventDriven,
                "naive" => EngineMode::Naive,
                "shadow" => EngineMode::Shadow,
                "parallel" => EngineMode::Parallel,
                "shadow-par" | "shadow_par" => EngineMode::ShadowPar,
                other => {
                    eprintln!(
                        "sim: ignoring unknown MMGPU_SIM_ENGINE={other:?} \
                         (expected event, naive, shadow, parallel, or shadow-par)"
                    );
                    EngineMode::EventDriven
                }
            },
            Err(_) => EngineMode::EventDriven,
        })
    }
}

/// Counters describing how much work the event-driven loop avoided,
/// accumulated across every kernel a [`GpuSim`] has run.
///
/// `visited_cycles * total_sms - sm_steps` is the number of per-SM scans
/// the naive loop would have performed that the event-driven loop
/// skipped; `skipped_cycles` is the number of whole cycles neither loop
/// visits (both fast-forward those, charging them as stall/idle time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastForwardStats {
    /// Clock advances of more than one cycle.
    pub jumps: u64,
    /// Cycles skipped by those jumps (never visited by the loop).
    pub skipped_cycles: u64,
    /// Cycles the loop actually visited.
    pub visited_cycles: u64,
    /// Per-SM processing steps actually executed (the naive loop would
    /// have executed `visited_cycles * total_sms`).
    pub sm_steps: u64,
}

/// Counters describing how the data-oriented (SoA) engine core spent
/// its effort, accumulated across every kernel a [`GpuSim`] has run.
/// Exported to the trace layer as `sim.soa.*` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SoaStats {
    /// Bitmask scans performed (free-CTA-slot probes plus
    /// exhausted-warp checks).
    pub mask_scans: u64,
    /// Retire scans skipped because the exhausted mask was empty.
    pub retire_scans_skipped: u64,
}

/// Event-loop bookkeeping for one contiguous run of SMs — the whole GPU
/// under the serial event-driven loop, one shard's GPM range under the
/// parallel engine. Holding it outside [`KernelState`] lets the epoch
/// coordinator patch wake times after the merge without aliasing the
/// warp pool, and lets each shard carry its own copy.
#[derive(Default)]
pub(crate) struct EventLoopState {
    /// Earliest `ready_at` among the SM's live warps; `u64::MAX` when
    /// none. Valid while the SM sleeps because sleeping SMs are exactly
    /// those whose state no cycle can change.
    pub(crate) ready_wake: Vec<u64>,
    /// Free CTA slot && CTA pending — processed at every visited cycle
    /// (the naive loop refills on visited cycles only, so refill times
    /// must not influence which cycles are visited — see DESIGN.md §12).
    refill_eligible: Vec<bool>,
    /// First cycle not yet charged to this SM (lazy idle/stall
    /// accounting for sleeping SMs).
    acct: Vec<u64>,
    /// Resident status while sleeping (constant between processings).
    sleeping_resident: Vec<bool>,
    /// Visited-cycle iteration of the SM's last processing (for
    /// round-robin pointer catch-up: naive advances rr once per
    /// *visited* cycle with warps resident, not per calendar cycle).
    last_iter: Vec<u64>,
    /// SMs that can still make progress: the per-cycle SM walk scans
    /// this mask word by word instead of testing a dead flag per SM.
    live_mask: BitWords,
    /// Count of members in `live_mask`; the kernel (or shard) is
    /// drained when it reaches zero.
    pub(crate) live: usize,
    /// Visited-cycle counter. Under the parallel engine every shard
    /// visits every epoch, so shard-local iteration counts equal the
    /// serial loop's global count — which keeps the rr catch-up above
    /// bit-exact.
    iter: u64,
}

impl EventLoopState {
    /// Re-arms the bookkeeping for a kernel over `total_sms` SMs
    /// starting at cycle `start`. Every SM begins refill-eligible so the
    /// first visited cycle processes all of them, exactly like the
    /// naive loop.
    pub(crate) fn reset(&mut self, total_sms: usize, start: u64) {
        self.ready_wake.clear();
        self.ready_wake.resize(total_sms, u64::MAX);
        self.refill_eligible.clear();
        self.refill_eligible.resize(total_sms, true);
        self.acct.clear();
        self.acct.resize(total_sms, start);
        self.sleeping_resident.clear();
        self.sleeping_resident.resize(total_sms, false);
        self.last_iter.clear();
        self.last_iter.resize(total_sms, 0);
        self.live_mask.clear();
        self.live_mask.grow_to(total_sms);
        for flat in 0..total_sms {
            self.live_mask.set(flat);
        }
        self.live = total_sms;
        self.iter = 0;
    }

    /// Processes one visited cycle: wakes every SM that can make
    /// progress at `now`, applies its lazy sleep accounting, steps it,
    /// and refreshes its wake/refill state. Returns whether any warp
    /// anywhere issued. The walk is ascending-SM-order identical to the
    /// naive loop's `for flat in 0..total_sms` (each mask word is
    /// snapshotted so the body may retire the SM it is processing).
    pub(crate) fn visit(
        &mut self,
        ctx: &KernelCtx<'_>,
        st: &mut KernelState,
        sink: &mut MemSink<'_>,
        soa: &mut SoaStats,
        sm_steps: &mut u64,
        now: u64,
    ) -> bool {
        self.iter += 1;
        let iter = self.iter;
        let issue_width = ctx.issue_width;
        let iw = issue_width as u64;
        let mut issued_any = false;

        for wi in 0..self.live_mask.word_count() {
            let mut word = self.live_mask.word(wi);
            while word != 0 {
                let flat = wi * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                if !(self.refill_eligible[flat] || self.ready_wake[flat] <= now) {
                    continue; // sleeping
                }

                // Lazy catch-up for the cycles this SM slept through.
                let slept = now - self.acct[flat];
                if slept > 0 {
                    st.counts.idle_sm_cycles += slept;
                    if self.sleeping_resident[flat] {
                        st.counts.stall_cycles += iw * slept;
                    }
                    let missed_iters = iter - 1 - self.last_iter[flat];
                    let n = st.pool.order_len[flat] as usize;
                    if n > 0 && missed_iters > 0 {
                        let r = st.pool.rr[flat] as usize;
                        st.pool.rr[flat] =
                            ((r % n + (missed_iters % n as u64) as usize) % n) as u32;
                    }
                }

                let step = GpuSim::step_sm(ctx, st, sink, soa, flat, now);
                *sm_steps += 1;
                if step.issued > 0 {
                    issued_any = true;
                }
                st.charge_cycle(step.issued, step.resident, issue_width);
                self.acct[flat] = now + 1;
                self.last_iter[flat] = iter;
                self.sleeping_resident[flat] = step.resident;
                self.refill_eligible[flat] = step.cta_pending && step.free_slot;
                if !step.resident && !step.cta_pending {
                    self.live_mask.unset(flat);
                    self.live -= 1;
                    self.ready_wake[flat] = u64::MAX;
                } else {
                    self.ready_wake[flat] = step.wake;
                }
            }
        }
        issued_any
    }

    /// The earliest wake time across all SMs (`u64::MAX` when nothing
    /// is pending) — the fast-forward jump target when no warp issued.
    pub(crate) fn min_wake(&self) -> u64 {
        self.ready_wake.iter().copied().min().unwrap_or(u64::MAX)
    }

    /// Final flush: the naive loop keeps charging drained SMs one idle
    /// cycle per visited cycle until the whole kernel drains; `through`
    /// is one past the final visited cycle.
    pub(crate) fn flush_idle(&self, st: &mut KernelState, through: u64) {
        for &charged in &self.acct {
            if charged < through {
                st.counts.idle_sm_cycles += through - charged;
            }
        }
    }
}

/// Applies one shard's deferred memory accesses in their recorded
/// (SM-then-poll) order — with shards merged in ascending order by the
/// caller, exactly the order the serial engine issues them at cycle
/// `now` — and patches the shard's warp state with the real outcomes:
/// placeholder ring entries become true completions, write-buffer
/// backpressure lands on `ready_at`, exhausted warps re-arm to their
/// true drain time, and each touched SM's wake time is recomputed
/// exactly (DESIGN.md §17 shows the exact recompute is unobservable).
/// Returns the number of accesses merged.
pub(crate) fn merge_deferred(
    mem: &mut MemorySystem,
    ctx: &KernelCtx<'_>,
    st: &mut KernelState,
    els: &mut EventLoopState,
    queue: &mut Vec<DeferredAccess>,
    now: u64,
) -> u64 {
    let merged = queue.len() as u64;
    for acc in queue.drain(..) {
        let g = acc.g as usize;
        let flat = g / st.pool.stride;
        let flat_global = st.sm_base + flat;
        let gpm = flat_global / ctx.sms_per_gpm;
        let sm_id = SmId::new(
            GpmId::new(gpm as u16),
            (flat_global - gpm * ctx.sms_per_gpm) as u16,
        );
        let out = mem.access(sm_id, acc.mref, now);
        if !acc.mref.is_store {
            st.pool.ring_replace_placeholder(g, out.completion);
        } else if out.blocking && !st.pool.exhausted.get(g) {
            // Write-buffer backpressure, exactly where the direct path
            // applies it. An exhausted warp discards it in favor of its
            // drain time (below), as the direct path's ring_max
            // overwrite does; a warp that already retired this cycle
            // (store with no loads in flight) has a freed slot whose
            // `ready_at` the next allocation resets.
            st.pool.ready_at[g] = out.completion;
        }
        if st.pool.exhausted.get(g) {
            st.pool.ready_at[g] = st.pool.ring_max(g).unwrap_or(now + 1);
        }
        // The shard's folded wake time saw placeholders; recompute it
        // exactly for still-live SMs.
        if els.live_mask.get(flat) {
            els.ready_wake[flat] = st.pool.next_ready(flat);
        }
    }
    merged
}

/// Debug build check that fast-forwarding from `now` to `next` jumps
/// over no ready event: every live warp's wake-up lies at or beyond the
/// target. Compiled to nothing in release builds.
#[allow(unused_variables)]
pub(crate) fn debug_assert_no_skip(st: &KernelState, now: u64, next: u64) {
    #[cfg(debug_assertions)]
    if next > now + 1 {
        for flat in 0..st.pool.total_sms {
            let wbase = flat * st.pool.stride;
            let n = st.pool.order_len[flat] as usize;
            for &s in &st.pool.order[wbase..wbase + n] {
                let ready_at = st.pool.ready_at[wbase + s as usize];
                debug_assert!(
                    ready_at <= now || ready_at >= next,
                    "fast-forward from {now} to {next} skips a warp ready at {ready_at}"
                );
            }
        }
    }
}

/// Reusable per-kernel allocations owned by [`GpuSim`]: the warp-state
/// columns and the event-loop bookkeeping vectors. Taken at kernel
/// launch, reset in place, and returned at kernel end, so steady-state
/// workloads allocate nothing per kernel.
#[derive(Default)]
struct EngineScratch {
    pool: WarpPool,
    gpm_issued: Vec<usize>,
    els: EventLoopState,
}

/// Immutable per-kernel parameters shared by every loop implementation.
pub(crate) struct KernelCtx<'a> {
    program: &'a dyn KernelProgram,
    pub(crate) partition: CtaPartition,
    pub(crate) warps_per_cta: usize,
    pub(crate) issue_width: usize,
    pub(crate) sms_per_gpm: usize,
    pub(crate) mlp_per_warp: usize,
    gto: bool,
    /// The kernel's single shared instruction sequence, when every warp
    /// runs the same one ([`KernelProgram::uniform_warp_program`]):
    /// decoded once here, shared by every warp slot, never re-decoded
    /// through the boxed iterators.
    uniform: Option<Arc<[WarpInstr]>>,
}

/// Mutable per-kernel state for one contiguous run of SMs: the whole
/// GPU for the serial loops (`sm_base == 0`), one shard's GPM range for
/// the parallel engine. Warp-pool and `gpm_issued` indices are local to
/// the range; `sm_base`/`gpm_base` locate it globally.
pub(crate) struct KernelState {
    pool: WarpPool,
    gpm_issued: Vec<usize>,
    pub(crate) counts: EventCounts,
    pub(crate) done_ctas: u32,
    /// Global flat index of this state's first SM. Always a multiple of
    /// `sms_per_gpm` (shards own whole GPMs).
    sm_base: usize,
    /// First GPM this state owns (`sm_base / sms_per_gpm`).
    gpm_base: usize,
}

/// Builds the shard-local [`KernelState`] for GPMs `gpm_lo..gpm_hi`
/// with a freshly shaped warp pool. Slot ids are unobservable (see
/// [`WarpPool`]), so a fresh pool per shard cannot perturb results.
pub(crate) fn shard_state(
    ctx: &KernelCtx<'_>,
    max_ctas_per_sm: usize,
    gpm_lo: usize,
    gpm_hi: usize,
) -> KernelState {
    let shard_sms = (gpm_hi - gpm_lo) * ctx.sms_per_gpm;
    let mut pool = WarpPool::default();
    pool.reset(
        shard_sms,
        max_ctas_per_sm * ctx.warps_per_cta,
        max_ctas_per_sm,
        ctx.mlp_per_warp.max(1),
    );
    KernelState {
        pool,
        gpm_issued: vec![0; gpm_hi - gpm_lo],
        counts: EventCounts::new(),
        done_ctas: 0,
        sm_base: gpm_lo * ctx.sms_per_gpm,
        gpm_base: gpm_lo,
    }
}

impl KernelState {
    /// Accounting for one SM over one visited cycle — the same charges
    /// whether the SM was processed (naive) or slept through it (event-
    /// driven lazy catch-up with `issued == 0`).
    fn charge_cycle(&mut self, issued: usize, resident: bool, issue_width: usize) {
        if issued > 0 {
            self.counts.busy_sm_cycles += 1;
            self.counts.stall_cycles += (issue_width - issued) as u64;
        } else if resident {
            self.counts.idle_sm_cycles += 1;
            self.counts.stall_cycles += issue_width as u64;
        } else {
            self.counts.idle_sm_cycles += 1;
        }
    }
}

/// Outcome of processing one SM at one visited cycle.
pub(crate) struct SmStep {
    /// Instructions issued this cycle (0..=issue_width).
    issued: usize,
    /// Post-step: the SM still holds live warps.
    resident: bool,
    /// Post-step: a CTA remains unassigned for this SM's module.
    cta_pending: bool,
    /// Post-step: the SM has a free resident-CTA slot.
    free_slot: bool,
    /// Post-step: earliest cycle at which a live warp needs service
    /// (`u64::MAX` when none). May be conservatively early — an extra
    /// zero-issue visit charges exactly like the naive loop's — but is
    /// never later than the true next event.
    wake: u64,
}

/// The multi-module GPU simulator.
///
/// State (module-side L2 contents, first-touch page placements, resource
/// queues, the global clock) persists across kernel launches within a
/// workload, with software-coherence flushes at each kernel boundary.
///
/// # Examples
///
/// ```
/// use sim::{GpuConfig, GpuSim};
/// use isa::{GridShape, KernelProgram, MemRef, WarpInstr, WarpInstrStream, Opcode};
/// use common::{CtaId, WarpId};
///
/// struct Saxpy;
/// impl KernelProgram for Saxpy {
///     fn name(&self) -> &str { "saxpy" }
///     fn grid(&self) -> GridShape { GridShape::new(8, 2) }
///     fn warp_instructions(&self, cta: CtaId, warp: WarpId) -> WarpInstrStream {
///         let base = (cta.0 as u64 * 2 + warp.0 as u64) * 256;
///         Box::new([
///             WarpInstr::Mem(MemRef::global_load(base)),
///             WarpInstr::Compute(Opcode::FFma32),
///             WarpInstr::Mem(MemRef::global_store(base + 128)),
///         ].into_iter())
///     }
/// }
///
/// let mut sim = GpuSim::new(&GpuConfig::tiny(1));
/// let result = sim.run_kernel(&Saxpy);
/// assert_eq!(result.ctas, 8);
/// assert!(result.cycles > 0);
/// ```
pub struct GpuSim {
    cfg: GpuConfig,
    mem: MemorySystem,
    now: u64,
    mode: EngineMode,
    ff: FastForwardStats,
    soa: SoaStats,
    par: crate::par::ParStats,
    /// Worker-thread budget for [`EngineMode::Parallel`]; `None` defers
    /// to `MMGPU_SIM_THREADS` / the machine's available parallelism.
    sim_threads: Option<usize>,
    scratch: EngineScratch,
}

impl GpuSim {
    /// Creates a simulator for a configuration, using the process-wide
    /// default [`EngineMode`] (see [`EngineMode::from_env`]).
    pub fn new(cfg: &GpuConfig) -> Self {
        GpuSim::with_mode(cfg, EngineMode::from_env())
    }

    /// Creates a simulator with an explicit clock-advance strategy.
    pub fn with_mode(cfg: &GpuConfig, mode: EngineMode) -> Self {
        GpuSim {
            cfg: cfg.clone(),
            mem: MemorySystem::new(cfg),
            now: 0,
            mode,
            ff: FastForwardStats::default(),
            soa: SoaStats::default(),
            par: crate::par::ParStats::default(),
            sim_threads: None,
            scratch: EngineScratch::default(),
        }
    }

    /// The configuration this simulator runs.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The memory system (diagnostics: hit rates, page balance).
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    /// The clock-advance strategy this simulator uses.
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// Fast-forward counters accumulated over every kernel run so far
    /// (all zero under [`EngineMode::Naive`]).
    pub fn fast_forward_stats(&self) -> FastForwardStats {
        self.ff
    }

    /// Data-oriented-core counters accumulated over every kernel run so
    /// far (bitmask scans, skipped retire passes).
    pub fn soa_stats(&self) -> SoaStats {
        self.soa
    }

    /// Parallel-engine counters accumulated over every kernel run so
    /// far (all zero unless [`EngineMode::Parallel`] /
    /// [`EngineMode::ShadowPar`] ran).
    pub fn par_stats(&self) -> crate::par::ParStats {
        self.par
    }

    /// Overrides the worker-thread budget the parallel engine may use.
    /// `None` (the default) defers to `MMGPU_SIM_THREADS`, then to the
    /// machine's available parallelism. The effective shard count is
    /// `min(threads, num_gpms)` — shards own whole GPMs, so extra
    /// threads beyond the GPM count are simply not used.
    pub fn set_sim_threads(&mut self, threads: Option<usize>) {
        self.sim_threads = threads;
    }

    fn resolved_threads(&self) -> usize {
        self.sim_threads
            .unwrap_or_else(crate::par::default_threads)
            .max(1)
    }

    /// Runs one kernel to completion and returns its event counts.
    pub fn run_kernel(&mut self, program: &dyn KernelProgram) -> KernelResult {
        match self.mode {
            EngineMode::EventDriven => self.run_kernel_with(program, LoopKind::Event),
            EngineMode::Naive => self.run_kernel_with(program, LoopKind::Naive),
            EngineMode::Parallel => self.run_kernel_with(program, LoopKind::Parallel),
            EngineMode::Shadow => self.run_shadowed(program, LoopKind::Event),
            EngineMode::ShadowPar => self.run_shadowed(program, LoopKind::Parallel),
        }
    }

    /// Runs the naive reference on a clone of the machine, then the
    /// checked loop on `self` (which stays authoritative), asserting
    /// bit-identical results and memory-side counters.
    fn run_shadowed(&mut self, program: &dyn KernelProgram, kind: LoopKind) -> KernelResult {
        let mut reference = GpuSim {
            cfg: self.cfg.clone(),
            mem: self.mem.clone(),
            now: self.now,
            mode: EngineMode::Naive,
            ff: FastForwardStats::default(),
            soa: SoaStats::default(),
            par: crate::par::ParStats::default(),
            sim_threads: self.sim_threads,
            scratch: EngineScratch::default(),
        };
        let expected = reference.run_kernel_with(program, LoopKind::Naive);
        let got = self.run_kernel_with(program, kind);
        let label = match kind {
            LoopKind::Parallel => "parallel",
            _ => "event-driven",
        };
        assert_eq!(
            got, expected,
            "shadow mode: {label} result diverged from the naive reference"
        );
        assert_eq!(
            self.now,
            reference.now,
            "shadow mode: clocks diverged after kernel {:?}",
            program.name()
        );
        assert_eq!(
            self.mem.txns(),
            reference.mem.txns(),
            "shadow mode: memory-side transaction counts diverged"
        );
        assert_eq!(
            self.mem.inter_gpm_hop_bytes(),
            reference.mem.inter_gpm_hop_bytes(),
            "shadow mode: NoC hop-byte counters diverged"
        );
        got
    }

    /// Shared kernel setup/teardown around the selected cycle loop.
    fn run_kernel_with(&mut self, program: &dyn KernelProgram, kind: LoopKind) -> KernelResult {
        let _span = trace::span("sim.kernel");
        let grid = program.grid();
        let num_gpms = self.cfg.num_gpms;
        let sms_per_gpm = self.cfg.gpm.sms;
        let total_sms = self.cfg.total_sms();

        // CTA partition across GPMs (contiguous by default, round-robin
        // under the scheduling ablation).
        let ctas = grid.ctas as usize;
        let warps_per_cta = grid.warps_per_cta as usize;
        let max_ctas_per_sm = (self.cfg.gpm.max_resident_warps / warps_per_cta).max(1);

        let ctx = KernelCtx {
            program,
            partition: CtaPartition::new(self.cfg.cta_schedule, ctas, num_gpms),
            warps_per_cta,
            issue_width: self.cfg.gpm.issue_width as usize,
            sms_per_gpm,
            mlp_per_warp: self.cfg.gpm.mlp_per_warp,
            gto: self.cfg.warp_scheduler == crate::config::WarpScheduler::GreedyThenOldest,
            uniform: program.uniform_warp_program().map(Arc::from),
        };

        // Event accumulation (memory-side counts snapshot for deltas).
        let txns_before = self.mem.txns().clone();
        let hop_before = self.mem.inter_gpm_hop_bytes();
        let e2e_before = self.mem.inter_gpm_bytes();
        let switch_before = self.mem.switch_bytes();

        let start = self.now;
        let ff_before = self.ff;
        let soa_before = self.soa;
        let par_before = self.par;

        // The parallel engine runs on shard-local state; it falls back
        // to the serial event loop (identical results) when the shard
        // worker pool is held by another simulation in this process.
        let sharded = if kind == LoopKind::Parallel {
            let threads = self.resolved_threads();
            let out = crate::par::run_shards(
                &mut self.mem,
                &mut self.par,
                &mut self.ff,
                &mut self.soa,
                &ctx,
                max_ctas_per_sm,
                threads,
                start,
            );
            if out.is_none() {
                self.par.serial_fallbacks += 1;
            }
            out
        } else {
            None
        };

        let (mut now, mut counts, done_ctas) = match sharded {
            Some(out) => out,
            None => {
                // Reuse the per-kernel allocations owned by the sim:
                // take the warp-state columns out of the scratch pool,
                // reset them in place, and return them at kernel end.
                let mut pool = std::mem::take(&mut self.scratch.pool);
                pool.reset(
                    total_sms,
                    max_ctas_per_sm * warps_per_cta,
                    max_ctas_per_sm,
                    ctx.mlp_per_warp.max(1),
                );
                let mut gpm_issued = std::mem::take(&mut self.scratch.gpm_issued);
                gpm_issued.clear();
                gpm_issued.resize(num_gpms, 0);
                let mut st = KernelState {
                    pool,
                    gpm_issued,
                    counts: EventCounts::new(),
                    done_ctas: 0,
                    sm_base: 0,
                    gpm_base: 0,
                };
                let now = if kind == LoopKind::Naive {
                    self.run_loop_naive(&ctx, &mut st, start)
                } else {
                    self.run_loop_event(&ctx, &mut st, start)
                };
                self.scratch.pool = std::mem::take(&mut st.pool);
                self.scratch.gpm_issued = std::mem::take(&mut st.gpm_issued);
                (now, st.counts, st.done_ctas)
            }
        };

        if kind != LoopKind::Naive {
            let d = self.ff;
            trace::count("sim.ff.jumps", d.jumps - ff_before.jumps);
            trace::count(
                "sim.ff.skipped_cycles",
                d.skipped_cycles - ff_before.skipped_cycles,
            );
            trace::count(
                "sim.ff.visited_cycles",
                d.visited_cycles - ff_before.visited_cycles,
            );
            trace::count("sim.ff.sm_steps", d.sm_steps - ff_before.sm_steps);
            let s = self.soa;
            trace::count("sim.soa.mask_scans", s.mask_scans - soa_before.mask_scans);
            trace::count(
                "sim.soa.retire_scans_skipped",
                s.retire_scans_skipped - soa_before.retire_scans_skipped,
            );
        }
        if kind == LoopKind::Parallel {
            let p = self.par;
            trace::count("sim.par.epochs", p.epochs - par_before.epochs);
            trace::count(
                "sim.par.merged_accesses",
                p.merged_accesses - par_before.merged_accesses,
            );
            trace::count(
                "sim.par.barrier_waits",
                p.barrier_waits - par_before.barrier_waits,
            );
            trace::count(
                "sim.par.serial_fallbacks",
                p.serial_fallbacks - par_before.serial_fallbacks,
            );
        }

        // Software coherence at the kernel boundary.
        now = self.mem.kernel_boundary(now).max(now);
        self.now = now;

        let cycles = now - start;
        counts.elapsed = common::Cycles::new(cycles) / self.cfg.gpm.clock;

        // Memory-side deltas against the pre-kernel snapshot.
        let mut txns = isa::TxnCounts::new();
        for (t, n) in self.mem.txns().iter() {
            txns.add(t, n - txns_before.get(t));
        }
        let hop_bytes = self.mem.inter_gpm_hop_bytes() - hop_before;
        let e2e_bytes = self.mem.inter_gpm_bytes() - e2e_before;
        let switch_bytes = self.mem.switch_bytes() - switch_before;
        txns.add(
            isa::Transaction::InterGpmHop,
            hop_bytes / isa::Transaction::InterGpmHop.bytes_per_txn(),
        );
        txns.add(
            isa::Transaction::SwitchTraversal,
            switch_bytes / isa::Transaction::SwitchTraversal.bytes_per_txn(),
        );
        counts.txns = txns;
        counts.inter_gpm_bytes = common::Bytes::new(e2e_bytes);
        counts.inter_gpm_hop_bytes = common::Bytes::new(hop_bytes);
        counts.switch_bytes = common::Bytes::new(switch_bytes);

        KernelResult {
            name: program.name().to_string(),
            counts,
            cycles,
            ctas: done_ctas,
        }
    }

    /// One scheduler poll of a warp slot `g` (already known ready) on
    /// SM `flat`: either issues the pending instruction (returns
    /// `true`) or makes the bookkeeping-only transition the historical
    /// poll made — the MLP-limit stall re-arm, or the exhausted-stream
    /// skip (`false`).
    ///
    /// An associated function over split borrows so both scheduler scan
    /// shapes share it without aliasing `KernelState`. Memory traffic
    /// goes through `sink`: the serial loops pass the memory system
    /// directly; the parallel engine defers the access to the epoch
    /// merge and parks a [`DEFER_PLACEHOLDER`] in the outstanding-load
    /// ring so every occupancy-dependent decision this cycle is
    /// unchanged (see DESIGN.md §17 for why that is exact).
    #[allow(clippy::too_many_arguments)]
    fn poll_issue(
        pool: &mut WarpPool,
        counts: &mut EventCounts,
        sink: &mut MemSink<'_>,
        ctx: &KernelCtx,
        sm_id: SmId,
        flat: usize,
        g: usize,
        now: u64,
    ) -> bool {
        let Some(instr) = pool.pending[g] else {
            return false;
        };
        // Loads are pipelined per warp up to the MLP limit; a warp at
        // the limit stalls until one of its loads returns.
        if matches!(instr, WarpInstr::Mem(m) if !m.is_store) {
            pool.ring_retain(g, now);
            if pool.out_len[g] as usize >= ctx.mlp_per_warp {
                pool.ready_at[g] = pool.ring_min(g).unwrap_or(now + 1);
                return false;
            }
        }
        match instr {
            WarpInstr::Compute(op) => {
                counts.instrs.add(op, WARP_SIZE as u64);
                pool.ready_at[g] = now + op.latency_cycles() as u64;
            }
            WarpInstr::Mem(mref) => match sink {
                MemSink::Direct(mem) => {
                    let out = mem.access(sm_id, mref, now);
                    if out.blocking && !mref.is_store {
                        pool.ring_push(g, out.completion);
                        pool.ready_at[g] = now + 1;
                    } else if out.blocking {
                        // Write-buffer backpressure.
                        pool.ready_at[g] = out.completion;
                    } else {
                        pool.ready_at[g] = now + 1;
                    }
                }
                MemSink::Defer(queue) => {
                    // Every load blocks with a future completion, so a
                    // placeholder ring entry plus the load's universal
                    // `ready_at = now + 1` reproduces the direct path's
                    // observable state; stores get the same `now + 1`
                    // and the merge re-applies write-buffer
                    // backpressure exactly where the direct path would.
                    queue.push(DeferredAccess { g: g as u32, mref });
                    if !mref.is_store {
                        pool.ring_push(g, DEFER_PLACEHOLDER);
                    }
                    pool.ready_at[g] = now + 1;
                }
            },
        }
        pool.streams[g].advance();
        pool.pending[g] = pool.streams[g].current();
        if pool.pending[g].is_none() {
            // Stream exhausted: the warp drains its outstanding loads
            // and retires in a later cleanup pass.
            pool.ready_at[g] = pool.ring_max(g).unwrap_or(now + 1);
            pool.exhausted.set(g);
            pool.exhausted_cnt[flat] += 1;
        }
        true
    }

    /// Processes one SM for one visited cycle: refill at most one CTA,
    /// issue up to `issue_width` instructions, retire drained warps.
    /// Accounting is left to the caller (the two loops charge visited
    /// and slept cycles differently, but through the same rates).
    ///
    /// `flat` is local to `st`; `st.sm_base`/`st.gpm_base` translate to
    /// global SM/GPM ids so CTA partitioning and NoC addressing are
    /// identical whether `st` spans the whole GPU (serial loops) or one
    /// shard's GPM range (parallel engine).
    pub(crate) fn step_sm(
        ctx: &KernelCtx,
        st: &mut KernelState,
        sink: &mut MemSink<'_>,
        soa: &mut SoaStats,
        flat: usize,
        now: u64,
    ) -> SmStep {
        let flat_global = st.sm_base + flat;
        let gpm = flat_global / ctx.sms_per_gpm;
        let sm_id = SmId::new(
            GpmId::new(gpm as u16),
            (flat_global - gpm * ctx.sms_per_gpm) as u16,
        );
        let gpm_local = gpm - st.gpm_base;
        let issue_width = ctx.issue_width;
        let pool = &mut st.pool;
        let wbase = flat * pool.stride;

        // Refill at most one CTA per SM per cycle (breadth-first across
        // the module's SMs, like a hardware CTA scheduler; filling one
        // SM's slots greedily would cluster small grids onto SM0).
        // `cta_next` doubles as the post-step `cta_pending` answer: it
        // is re-read only when this step consumed a CTA.
        let mut cta_next = ctx.partition.nth_for(gpm, st.gpm_issued[gpm_local]);
        if let Some(cta) = cta_next {
            soa.mask_scans += 1;
            if let Some(slot_idx) = pool.cta_first_free(flat) {
                st.gpm_issued[gpm_local] += 1;
                cta_next = ctx.partition.nth_for(gpm, st.gpm_issued[gpm_local]);
                let cslot = flat * pool.cta_stride + slot_idx;
                pool.cta_live[cslot] = ctx.warps_per_cta as u32;
                pool.cta_free.unset(cslot);
                pool.cta_free_cnt[flat] -= 1;
                for w in 0..ctx.warps_per_cta {
                    let landed = if let Some(uni) = &ctx.uniform {
                        pool.alloc_warp(flat, |s| s.reset_shared(uni.clone()), slot_idx as u32, now)
                    } else {
                        let stream = ctx
                            .program
                            .warp_instructions(CtaId::new(cta as u32), WarpId::new(w as u32));
                        pool.alloc_warp(flat, |s| s.reset(stream), slot_idx as u32, now)
                    };
                    if !landed {
                        // Degenerate empty warp: retire instantly.
                        pool.cta_live[cslot] -= 1;
                        if pool.cta_live[cslot] == 0 {
                            pool.cta_free.set(cslot);
                            pool.cta_free_cnt[flat] += 1;
                            st.done_ctas += 1;
                        }
                    }
                }
            }
        }

        // Issue up to issue_width instructions, in policy order: loose
        // round robin rotates through the physical order; greedy-then-
        // oldest prefers the warp it issued from last, then walks the
        // age-ordered list — the same sequence the historical
        // `sort_by_key((age != greedy, age))` produced, without the
        // per-cycle sort.
        let n = pool.order_len[flat] as usize;
        let mut issued = 0usize;
        let mut first_issued_slot = NONE;
        // Earliest future service time, folded into the scans this step
        // already performs; `true` forces a full end-of-step rescan on
        // the paths that mutate `ready_at` outside that fold.
        let mut wake = u64::MAX;
        let mut wake_rescan = false;
        if n > 0 {
            let start_rr = {
                // rr is stored already wrapped; it can only exceed the
                // live count when warps retired since the last step.
                let r = pool.rr[flat] as usize;
                if r >= n {
                    r % n
                } else {
                    r
                }
            };
            if !ctx.gto && n <= 64 {
                // Loose-round-robin mask fast path: one branchless pass
                // builds a position-indexed ready mask, then only the
                // (typically zero or one) ready warps are visited — via
                // `trailing_zeros`, in the exact rotated position order
                // the historical poll-every-warp loop used. Warps that
                // are not ready are pure no-op polls in that loop, so
                // never visiting them is unobservable.
                let mut posmask: u64 = 0;
                for p in 0..n {
                    let s = pool.order[wbase + p] as usize;
                    let ra = pool.ready_at[wbase + s];
                    let ready = ra <= now;
                    posmask |= (ready as u64) << p;
                    // Not-ready warps keep their ready_at through the
                    // whole step (only the retire pass re-arms them,
                    // and it triggers a rescan), so fold their wake
                    // time here instead of re-scanning after issue.
                    wake = wake.min(if ready { u64::MAX } else { ra });
                }
                // Split at the rotation point instead of rotating, so
                // bit indices stay raw positions.
                let ge_rr = (u64::MAX >> (64 - n)) << start_rr;
                let mut hi = posmask & ge_rr;
                let mut lo = posmask & !ge_rr;
                while issued < issue_width {
                    let p = if hi != 0 {
                        let p = hi.trailing_zeros() as usize;
                        hi &= hi - 1;
                        p
                    } else if lo != 0 {
                        let p = lo.trailing_zeros() as usize;
                        lo &= lo - 1;
                        p
                    } else {
                        break;
                    };
                    let s = pool.order[wbase + p];
                    let g = wbase + s as usize;
                    if Self::poll_issue(pool, &mut st.counts, sink, ctx, sm_id, flat, g, now) {
                        if first_issued_slot == NONE {
                            first_issued_slot = s;
                        }
                        issued += 1;
                    }
                    // Issued or stalled, the poll leaves ready_at as
                    // this warp's next service time (an exhausted
                    // stream additionally triggers the rescan below).
                    wake = wake.min(pool.ready_at[g]);
                }
                if hi | lo != 0 {
                    // Ready warps left unvisited by the issue-width cap
                    // are issuable again next cycle.
                    wake = wake.min(now + 1);
                }
            } else {
                // Generic poll loop: the greedy-then-oldest list walk
                // (any warp count), or loose round robin across more
                // than 64 resident warps.
                wake_rescan = true;
                let mut rr_idx = start_rr;
                let greedy = pool.greedy[flat];
                let mut cursor = if greedy != NONE {
                    greedy
                } else {
                    pool.gto_head[flat]
                };
                for _k in 0..n {
                    if issued == issue_width {
                        break;
                    }
                    let i = if ctx.gto {
                        let cur = cursor;
                        let mut nx = if cur == greedy {
                            pool.gto_head[flat]
                        } else {
                            pool.gto_next[wbase + cur as usize]
                        };
                        if nx != NONE && nx == greedy {
                            nx = pool.gto_next[wbase + nx as usize];
                        }
                        cursor = nx;
                        cur as usize
                    } else {
                        let i = pool.order[wbase + rr_idx] as usize;
                        rr_idx += 1;
                        if rr_idx == n {
                            rr_idx = 0;
                        }
                        i
                    };
                    let g = wbase + i;
                    if pool.ready_at[g] > now {
                        continue;
                    }
                    if Self::poll_issue(pool, &mut st.counts, sink, ctx, sm_id, flat, g, now) {
                        if first_issued_slot == NONE {
                            first_issued_slot = i as u32;
                        }
                        issued += 1;
                    }
                }
            }
            pool.rr[flat] = if start_rr + 1 == n {
                0
            } else {
                (start_rr + 1) as u32
            };
            if ctx.gto && first_issued_slot != NONE {
                pool.greedy[flat] = first_issued_slot;
            }
        }

        // Retire warps whose stream is exhausted once their last loads
        // have returned (a warp never abandons in-flight memory). The
        // exhausted count makes the no-retirement case — every visited
        // cycle of a compute-bound kernel's steady state — one counter
        // test instead of a scan; removal from `order` keeps the exact
        // `swap_remove` physical reordering.
        soa.mask_scans += 1;
        if pool.exhausted_cnt[flat] > 0 {
            // Retirement and load-drain re-arming move ready_at under
            // the incremental fold's feet; recompute from scratch.
            wake_rescan = true;
            let mut len = pool.order_len[flat] as usize;
            let mut wi = 0;
            while wi < len {
                let s = pool.order[wbase + wi];
                let g = wbase + s as usize;
                if pool.exhausted.get(g) {
                    pool.ring_retain(g, now);
                    if pool.out_len[g] == 0 {
                        let cslot = flat * pool.cta_stride + pool.cta_of[g] as usize;
                        pool.cta_live[cslot] -= 1;
                        if pool.cta_live[cslot] == 0 {
                            pool.cta_free.set(cslot);
                            pool.cta_free_cnt[flat] += 1;
                            st.done_ctas += 1;
                        }
                        pool.retire_slot(flat, s);
                        pool.order[wbase + wi] = pool.order[wbase + len - 1];
                        len -= 1;
                        continue;
                    }
                    // Wake exactly when the last load lands.
                    pool.ready_at[g] = pool.ring_max(g).unwrap_or(now + 1);
                }
                wi += 1;
            }
            pool.order_len[flat] = len as u32;
        } else {
            soa.retire_scans_skipped += 1;
        }

        SmStep {
            issued,
            resident: pool.resident(flat),
            cta_pending: cta_next.is_some(),
            free_slot: pool.cta_free_cnt[flat] > 0,
            wake: if wake_rescan {
                pool.next_ready(flat)
            } else {
                wake
            },
        }
    }

    /// The reference loop: every SM is processed on every visited cycle;
    /// when no warp anywhere issued, the clock jumps to the next wake-up,
    /// charging the skipped cycles as memory-wait (stall) time — the
    /// quantity that drives the paper's constant-energy exposure at
    /// scale. This is the historical seed behavior, kept bit-for-bit.
    fn run_loop_naive(&mut self, ctx: &KernelCtx, st: &mut KernelState, start: u64) -> u64 {
        let total_sms = st.pool.total_sms;
        let issue_width = ctx.issue_width;
        let mut now = start;
        loop {
            let mut issued_any = false;
            let mut all_drained = true;

            for flat in 0..total_sms {
                let mut sink = MemSink::Direct(&mut self.mem);
                let step = Self::step_sm(ctx, st, &mut sink, &mut self.soa, flat, now);
                if step.issued > 0 {
                    issued_any = true;
                }
                st.charge_cycle(step.issued, step.resident, issue_width);
                if step.resident || step.cta_pending {
                    all_drained = false;
                }
            }

            if all_drained {
                break;
            }

            if issued_any {
                now += 1;
            } else {
                // Nothing issued anywhere: jump to the next wake-up.
                let mut min_ready = u64::MAX;
                for flat in 0..total_sms {
                    min_ready = min_ready.min(st.pool.next_ready(flat));
                }
                let next = if min_ready == u64::MAX {
                    now + 1
                } else {
                    min_ready.max(now + 1)
                };
                let skipped = next - now - 1; // the current cycle is already accounted
                if skipped > 0 {
                    for flat in 0..total_sms {
                        if st.pool.resident(flat) {
                            st.counts.idle_sm_cycles += skipped;
                            st.counts.stall_cycles += issue_width as u64 * skipped;
                        } else {
                            st.counts.idle_sm_cycles += skipped;
                        }
                    }
                }
                now = next;
            }
        }
        now
    }

    /// The event-driven loop. Equivalent to `run_loop_naive`
    /// but it only *processes* SMs that can make progress at the visited
    /// cycle; the rest sleep. Per SM it tracks:
    ///
    /// * `ready_wake` — the earliest `ready_at` among its live warps
    ///   (what `WarpPool::next_ready` computes, maintained
    ///   incrementally). Valid while the SM sleeps because sleeping SMs
    ///   are exactly those whose state no cycle can change.
    /// * `refill_eligible` — a free CTA slot plus a CTA remaining for its
    ///   module. Such an SM is processed at *every visited* cycle (the
    ///   naive loop refills on visited cycles only, so refill times must
    ///   not influence which cycles are visited — see DESIGN.md §12).
    /// * lazy accounting — a sleeping SM's idle/stall charges and its
    ///   round-robin pointer advances are applied in one batch when it
    ///   wakes, at the same rates the naive loop applies per cycle.
    ///
    /// The visited-cycle sequence is therefore identical to the naive
    /// loop's: `now + 1` when any SM issued, else the minimum
    /// `ready_wake` (debug asserts check no ready event is ever jumped
    /// over).
    fn run_loop_event(&mut self, ctx: &KernelCtx, st: &mut KernelState, start: u64) -> u64 {
        let mut now = start;
        let mut els = std::mem::take(&mut self.scratch.els);
        els.reset(st.pool.total_sms, start);

        loop {
            self.ff.visited_cycles += 1;
            let mut sink = MemSink::Direct(&mut self.mem);
            let issued_any = els.visit(
                ctx,
                st,
                &mut sink,
                &mut self.soa,
                &mut self.ff.sm_steps,
                now,
            );

            if els.live == 0 {
                break;
            }

            // Advance the clock exactly as the naive loop would: one
            // cycle while anything issued, else straight to the earliest
            // warp wake-up (refill-eligible SMs deliberately do not pull
            // the jump target closer — the naive loop skips their refill
            // opportunities on unvisited cycles too).
            let next = if issued_any {
                now + 1
            } else {
                let min_ready = els.min_wake();
                if min_ready == u64::MAX {
                    now + 1
                } else {
                    min_ready.max(now + 1)
                }
            };

            debug_assert_no_skip(st, now, next);

            if next > now + 1 {
                self.ff.jumps += 1;
                self.ff.skipped_cycles += next - now - 1;
            }
            now = next;
        }

        els.flush_idle(st, now + 1);

        // Return the bookkeeping vectors to the scratch pool.
        self.scratch.els = els;
        now
    }

    /// Walks a kernel's trace in CTA order and first-touch-places every
    /// page on the GPM its CTA is partitioned to, without simulating any
    /// timing or energy.
    ///
    /// This models what happens on real systems: data is written by an
    /// in-order initialization phase before the measured kernels run, so
    /// first-touch placement reflects the owning partition rather than
    /// the racy arrival order of a cold simulator start. Pages that are
    /// already placed (by an earlier kernel of the workload) keep their
    /// home.
    pub fn prefault(&mut self, program: &dyn KernelProgram) {
        let _span = trace::span("sim.prefault");
        let grid = program.grid();
        let partition =
            CtaPartition::new(self.cfg.cta_schedule, grid.ctas as usize, self.cfg.num_gpms);
        let regions = program.data_regions();
        if !regions.is_empty() {
            // Address order matches ownership order: place each region's
            // pages on the module whose CTA (under the active schedule)
            // owns that fraction of the address range, mirroring the
            // first touch an in-order init phase would perform.
            let page = self.cfg.page_bytes.count();
            for (base, len) in regions {
                if len == 0 {
                    continue;
                }
                let mut addr = base & !(page - 1);
                while addr < base + len {
                    let offset = addr.saturating_sub(base);
                    let cta = ((offset as u128 * grid.ctas as u128) / len as u128) as usize;
                    let gpm = partition.gpm_of(cta.min(grid.ctas as usize - 1));
                    self.mem.prefault_page(addr, GpmId::new(gpm as u16));
                    addr += page;
                }
            }
            return;
        }

        // Fallback: walk the trace in CTA order.
        for cta in 0..grid.ctas {
            let gpm = GpmId::new(partition.gpm_of(cta as usize) as u16);
            for warp in 0..grid.warps_per_cta {
                for instr in program.warp_instructions(CtaId::new(cta), WarpId::new(warp)) {
                    if let WarpInstr::Mem(mref) = instr {
                        if mref.space == isa::MemSpace::Global {
                            self.mem.prefault_page(mref.addr, gpm);
                        }
                    }
                }
            }
        }
    }

    /// Runs a workload: every launch in order, each [`LaunchSpec`]
    /// repeated its configured number of times. Each program is
    /// pre-faulted (see [`GpuSim::prefault`]) before its first launch.
    pub fn run_workload(&mut self, launches: &[LaunchSpec]) -> WorkloadResult {
        let _span = trace::span("sim.workload");
        let mut result = WorkloadResult::default();
        for launch in launches {
            self.prefault(launch.program.as_ref());
            for _ in 0..launch.invocations {
                result
                    .kernels
                    .push(self.run_kernel(launch.program.as_ref()));
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BwSetting, GpuConfig, Topology};
    use isa::{GridShape, MemRef, Opcode, WarpInstrStream};

    impl GpuSim {
        /// Test helper: prefault, run one kernel, return NUMA hop-bytes.
        fn run_and_hops(mut self, k: &dyn KernelProgram) -> u64 {
            self.prefault(k);
            let r = self.run_kernel(k);
            r.counts.inter_gpm_hop_bytes.count()
        }
    }

    /// A compute-only kernel: `len` FMAs per warp.
    struct ComputeKernel {
        ctas: u32,
        warps: u32,
        len: u32,
    }

    impl KernelProgram for ComputeKernel {
        fn name(&self) -> &str {
            "compute"
        }
        fn grid(&self) -> GridShape {
            GridShape::new(self.ctas, self.warps)
        }
        fn warp_instructions(&self, _cta: CtaId, _warp: WarpId) -> WarpInstrStream {
            Box::new((0..self.len).map(|_| WarpInstr::Compute(Opcode::FFma32)))
        }
    }

    /// A streaming kernel: each warp strides through its own array slice.
    struct StreamKernel {
        ctas: u32,
        warps: u32,
        lines_per_warp: u32,
    }

    impl KernelProgram for StreamKernel {
        fn name(&self) -> &str {
            "stream"
        }
        fn grid(&self) -> GridShape {
            GridShape::new(self.ctas, self.warps)
        }
        fn warp_instructions(&self, cta: CtaId, warp: WarpId) -> WarpInstrStream {
            let wpc = self.warps as u64;
            let stride = self.lines_per_warp as u64 * 128;
            let base = (cta.0 as u64 * wpc + warp.0 as u64) * stride;
            Box::new(
                (0..self.lines_per_warp as u64)
                    .map(move |i| WarpInstr::Mem(MemRef::global_load(base + i * 128))),
            )
        }
    }

    #[test]
    fn compute_kernel_counts_thread_instructions() {
        let mut sim = GpuSim::new(&GpuConfig::tiny(1));
        let k = ComputeKernel {
            ctas: 8,
            warps: 4,
            len: 50,
        };
        let r = sim.run_kernel(&k);
        assert_eq!(r.ctas, 8);
        assert_eq!(
            r.counts.instrs.get(Opcode::FFma32),
            8 * 4 * 50 * WARP_SIZE as u64
        );
        assert!(r.cycles > 50, "latency-bound lower bound");
    }

    #[test]
    fn compute_kernel_scales_with_sm_count() {
        let k = ComputeKernel {
            ctas: 64,
            warps: 8,
            len: 100,
        };
        let mut sim1 = GpuSim::new(&GpuConfig::tiny(1));
        let c1 = sim1.run_kernel(&k).cycles;
        let mut sim4 = GpuSim::new(&GpuConfig::tiny(4));
        let c4 = sim4.run_kernel(&k).cycles;
        let speedup = c1 as f64 / c4 as f64;
        assert!(
            speedup > 2.5,
            "4x SMs should speed up compute ~4x, got {speedup:.2}"
        );
    }

    #[test]
    fn stream_kernel_is_dram_bound() {
        let mut sim = GpuSim::new(&GpuConfig::tiny(1));
        let k = StreamKernel {
            ctas: 16,
            warps: 4,
            lines_per_warp: 64,
        };
        let r = sim.run_kernel(&k);
        // 16*4*64 lines * 128 B at 256 B/cycle = at least 2048 cycles.
        let min_cycles = (16 * 4 * 64 * 128) / 256;
        assert!(
            r.cycles as f64 > 0.8 * min_cycles as f64,
            "cycles {} should approach DRAM bound {}",
            r.cycles,
            min_cycles
        );
        assert!(r.counts.stall_cycles > 0, "memory-bound kernels stall");
        assert!(r.counts.idle_fraction() > 0.0);
    }

    #[test]
    fn elapsed_matches_cycles_at_1ghz() {
        let mut sim = GpuSim::new(&GpuConfig::tiny(1));
        let r = sim.run_kernel(&ComputeKernel {
            ctas: 4,
            warps: 2,
            len: 20,
        });
        assert!((r.counts.elapsed.nanos() - r.cycles as f64).abs() < 1e-6);
    }

    #[test]
    fn workload_runs_repeated_launches() {
        let mut sim = GpuSim::new(&GpuConfig::tiny(1));
        let launches = vec![LaunchSpec::repeated(
            Box::new(ComputeKernel {
                ctas: 2,
                warps: 2,
                len: 10,
            }),
            3,
        )];
        let result = sim.run_workload(&launches);
        assert_eq!(result.launches(), 3);
        assert!(result.total_cycles() > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let k = StreamKernel {
            ctas: 8,
            warps: 4,
            lines_per_warp: 16,
        };
        let mut a = GpuSim::new(&GpuConfig::tiny(2));
        let mut b = GpuSim::new(&GpuConfig::tiny(2));
        let ra = a.run_kernel(&k);
        let rb = b.run_kernel(&k);
        assert_eq!(ra, rb);
    }

    #[test]
    fn multi_gpm_generates_inter_module_traffic_for_shared_data() {
        // All CTAs read the same shared array: first toucher homes it and
        // everyone else must cross the NoC.
        struct SharedReader;
        impl KernelProgram for SharedReader {
            fn name(&self) -> &str {
                "shared-reader"
            }
            fn grid(&self) -> GridShape {
                GridShape::new(16, 2)
            }
            fn warp_instructions(&self, cta: CtaId, warp: WarpId) -> WarpInstrStream {
                // Each warp reads a distinct line from one shared region
                // (so the region is homed by whoever touches it first) —
                // lines spread over a few pages.
                let idx = (cta.0 as u64 * 2 + warp.0 as u64) * 8;
                Box::new((0..8u64).map(move |i| {
                    WarpInstr::Mem(MemRef::global_load(0x100_0000 + ((idx + i) % 1024) * 128))
                }))
            }
        }
        let mut sim = GpuSim::new(&GpuConfig::tiny(4));
        let r = sim.run_kernel(&SharedReader);
        assert!(
            r.counts.inter_gpm_hop_bytes.count() > 0,
            "shared pages must generate NUMA traffic"
        );
    }

    #[test]
    fn ideal_interconnect_removes_numa_penalty() {
        let k = StreamKernel {
            ctas: 32,
            warps: 4,
            lines_per_warp: 32,
        };
        let ring_cfg = GpuConfig {
            topology: Topology::Ring,
            ..GpuConfig::tiny(4)
        };
        let ideal_cfg = GpuConfig {
            topology: Topology::Ideal,
            ..GpuConfig::tiny(4)
        };
        let mut ring = GpuSim::new(&ring_cfg);
        let mut ideal = GpuSim::new(&ideal_cfg);
        let rr = ring.run_kernel(&k);
        let ri = ideal.run_kernel(&k);
        // First-touch makes this kernel mostly local, so the gap is small,
        // but ideal must never be slower and must carry zero hop bytes.
        assert!(ri.cycles <= rr.cycles);
        assert_eq!(ri.counts.inter_gpm_hop_bytes.count(), 0);
    }

    #[test]
    fn stores_count_but_do_not_block() {
        struct StoreKernel;
        impl KernelProgram for StoreKernel {
            fn name(&self) -> &str {
                "stores"
            }
            fn grid(&self) -> GridShape {
                GridShape::new(2, 2)
            }
            fn warp_instructions(&self, cta: CtaId, warp: WarpId) -> WarpInstrStream {
                let base = (cta.0 as u64 * 2 + warp.0 as u64) * 4096;
                Box::new(
                    (0..16u64).map(move |i| WarpInstr::Mem(MemRef::global_store(base + i * 128))),
                )
            }
        }
        let mut sim = GpuSim::new(&GpuConfig::tiny(1));
        let r = sim.run_kernel(&StoreKernel);
        assert!(r.counts.txns.get(isa::Transaction::L2ToL1) >= 2 * 2 * 16 * 4);
        // Store-only kernels retire fast (no blocking).
        assert!(
            r.cycles < 2000,
            "stores should not serialize, got {}",
            r.cycles
        );
    }

    #[test]
    fn gto_scheduler_executes_identical_work() {
        // Scheduling policy must not change *what* runs — only when. The
        // paper's §II abstraction argument in one test: event counts that
        // feed the energy model are schedule-invariant up to stall/idle
        // timing.
        let k = StreamKernel {
            ctas: 16,
            warps: 4,
            lines_per_warp: 24,
        };
        let mut lrr_sim = GpuSim::new(&GpuConfig::tiny(2));
        let lrr = lrr_sim.run_kernel(&k);
        let gto_cfg = GpuConfig {
            warp_scheduler: crate::config::WarpScheduler::GreedyThenOldest,
            ..GpuConfig::tiny(2)
        };
        let mut gto_sim = GpuSim::new(&gto_cfg);
        let gto = gto_sim.run_kernel(&k);
        assert_eq!(lrr.counts.instrs, gto.counts.instrs);
        assert_eq!(
            lrr.counts.txns.get(isa::Transaction::L1ToReg),
            gto.counts.txns.get(isa::Transaction::L1ToReg)
        );
        assert_eq!(lrr.ctas, gto.ctas);
        // Cycle counts are allowed to differ, but not wildly.
        let ratio = lrr.cycles as f64 / gto.cycles as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "LRR {} vs GTO {}",
            lrr.cycles,
            gto.cycles
        );
    }

    #[test]
    fn round_robin_scheduling_still_completes_all_ctas() {
        let k = StreamKernel {
            ctas: 17,
            warps: 3,
            lines_per_warp: 8,
        };
        let cfg = GpuConfig {
            cta_schedule: crate::config::CtaSchedule::RoundRobin,
            ..GpuConfig::tiny(4)
        };
        let mut sim = GpuSim::new(&cfg);
        let r = sim.run_kernel(&k);
        assert_eq!(r.ctas, 17);
        assert_eq!(
            r.counts.txns.get(isa::Transaction::L1ToReg),
            17 * 3 * 8,
            "every load retired"
        );
    }

    #[test]
    fn interleaved_pages_spread_private_data_everywhere() {
        // A private stream under first-touch is local; interleaved pages
        // make most of it remote — the ablation the paper's placement
        // choice avoids.
        let k = StreamKernel {
            ctas: 32,
            warps: 4,
            lines_per_warp: 64,
        };
        let ft = GpuSim::new(&GpuConfig::tiny(4)).run_and_hops(&k);
        let il = GpuSim::new(&GpuConfig {
            page_policy: crate::config::PagePolicy::Interleaved,
            ..GpuConfig::tiny(4)
        })
        .run_and_hops(&k);
        assert!(
            il > ft,
            "interleaving must create more NUMA traffic: {il} vs {ft}"
        );
    }

    #[test]
    fn memory_side_l2_refetches_remote_lines() {
        // Reading the same remote lines twice: module-side caches them,
        // memory-side crosses the NoC both times.
        struct TwoPass;
        impl KernelProgram for TwoPass {
            fn name(&self) -> &str {
                "two-pass"
            }
            fn grid(&self) -> GridShape {
                GridShape::new(4, 2)
            }
            fn warp_instructions(&self, cta: CtaId, warp: WarpId) -> WarpInstrStream {
                let w = cta.0 as u64 * 2 + warp.0 as u64;
                // Everyone reads the same 128 lines twice — more lines
                // than the tiny L1 holds, so the second pass misses L1
                // and lands in an L2: the *local* one under module-side
                // caching, the *home* one (across the NoC) under
                // memory-side.
                Box::new(
                    (0..256u64).map(move |i| {
                        WarpInstr::Mem(MemRef::global_load(((i + w * 7) % 128) * 128))
                    }),
                )
            }
            fn data_regions(&self) -> Vec<(u64, u64)> {
                vec![(0, 128 * 128)]
            }
        }
        let module = GpuSim::new(&GpuConfig::tiny(4)).run_and_hops(&TwoPass);
        let memory = GpuSim::new(&GpuConfig {
            l2_mode: crate::config::L2Mode::MemorySide,
            ..GpuConfig::tiny(4)
        })
        .run_and_hops(&TwoPass);
        assert!(
            memory > module,
            "memory-side must re-cross the NoC: {memory} vs {module}"
        );
    }

    #[test]
    fn more_bandwidth_helps_memory_bound_multi_gpm() {
        // Remote-heavy reader: GPM0 touches everything first, then all
        // GPMs read it. Two kernels in one workload.
        struct Toucher;
        impl KernelProgram for Toucher {
            fn name(&self) -> &str {
                "touch"
            }
            fn grid(&self) -> GridShape {
                GridShape::new(1, 8)
            }
            fn warp_instructions(&self, _cta: CtaId, warp: WarpId) -> WarpInstrStream {
                let base = warp.0 as u64 * 512 * 128;
                Box::new(
                    (0..512u64).map(move |i| WarpInstr::Mem(MemRef::global_load(base + i * 128))),
                )
            }
        }
        struct Reader;
        impl KernelProgram for Reader {
            fn name(&self) -> &str {
                "read"
            }
            fn grid(&self) -> GridShape {
                GridShape::new(32, 4)
            }
            fn warp_instructions(&self, cta: CtaId, warp: WarpId) -> WarpInstrStream {
                let seed = cta.0 as u64 * 4 + warp.0 as u64;
                Box::new((0..64u64).map(move |i| {
                    let line = (seed * 97 + i * 131) % 4096;
                    WarpInstr::Mem(MemRef::global_load(line * 128))
                }))
            }
        }

        let run = |bw: BwSetting| {
            let gpm = crate::config::GpmConfig::tiny();
            let cfg = GpuConfig {
                inter_gpm_bw: bw.inter_gpm_bw(gpm.dram_bw),
                ..GpuConfig::tiny(4)
            };
            let mut sim = GpuSim::new(&cfg);
            sim.run_kernel(&Toucher);
            sim.run_kernel(&Reader).cycles
        };
        let slow = run(BwSetting::X1);
        let fast = run(BwSetting::X4);
        assert!(
            fast < slow,
            "4x inter-GPM bandwidth should speed up remote reads: {fast} vs {slow}"
        );
    }

    #[test]
    fn event_and_naive_loops_agree_on_streams() {
        let k = StreamKernel {
            ctas: 24,
            warps: 4,
            lines_per_warp: 32,
        };
        let cfg = GpuConfig::tiny(4);
        let mut event = GpuSim::with_mode(&cfg, EngineMode::EventDriven);
        let mut naive = GpuSim::with_mode(&cfg, EngineMode::Naive);
        event.prefault(&k);
        naive.prefault(&k);
        assert_eq!(event.run_kernel(&k), naive.run_kernel(&k));
        assert_eq!(event.memory().txns(), naive.memory().txns());
        // The stall-heavy stream must actually exercise fast-forward.
        let ff = event.fast_forward_stats();
        assert!(ff.skipped_cycles > 0, "stream kernels must fast-forward");
        assert!(ff.sm_steps < ff.visited_cycles * cfg.total_sms() as u64);
        assert_eq!(naive.fast_forward_stats(), FastForwardStats::default());
    }

    #[test]
    fn event_and_naive_loops_agree_under_gto() {
        let k = StreamKernel {
            ctas: 16,
            warps: 4,
            lines_per_warp: 24,
        };
        let cfg = GpuConfig {
            warp_scheduler: crate::config::WarpScheduler::GreedyThenOldest,
            ..GpuConfig::tiny(2)
        };
        let mut event = GpuSim::with_mode(&cfg, EngineMode::EventDriven);
        let mut naive = GpuSim::with_mode(&cfg, EngineMode::Naive);
        assert_eq!(event.run_kernel(&k), naive.run_kernel(&k));
    }

    #[test]
    fn shadow_mode_runs_and_matches_event_driven() {
        let k = StreamKernel {
            ctas: 8,
            warps: 4,
            lines_per_warp: 16,
        };
        let cfg = GpuConfig::tiny(2);
        let mut shadow = GpuSim::with_mode(&cfg, EngineMode::Shadow);
        let mut event = GpuSim::with_mode(&cfg, EngineMode::EventDriven);
        // Shadow asserts internally; its visible result equals the
        // event-driven one.
        assert_eq!(shadow.run_kernel(&k), event.run_kernel(&k));
        assert_eq!(shadow.mode(), EngineMode::Shadow);
    }

    #[test]
    fn shadow_mode_holds_across_multi_kernel_workloads() {
        // State persists across launches (L2 contents, pages, clock);
        // shadow must stay bit-equal kernel after kernel.
        let mut sim = GpuSim::with_mode(&GpuConfig::tiny(4), EngineMode::Shadow);
        let launches = vec![
            LaunchSpec::repeated(
                Box::new(StreamKernel {
                    ctas: 16,
                    warps: 4,
                    lines_per_warp: 16,
                }),
                2,
            ),
            LaunchSpec::repeated(
                Box::new(ComputeKernel {
                    ctas: 8,
                    warps: 4,
                    len: 40,
                }),
                1,
            ),
        ];
        let result = sim.run_workload(&launches);
        assert_eq!(result.launches(), 3);
    }

    #[test]
    fn degenerate_grids_agree_across_modes() {
        // Empty-stream warps retire instantly; grids smaller than the
        // GPM count leave whole modules idle. Both paths must agree.
        struct EmptyKernel;
        impl KernelProgram for EmptyKernel {
            fn name(&self) -> &str {
                "empty"
            }
            fn grid(&self) -> GridShape {
                GridShape::new(3, 2)
            }
            fn warp_instructions(&self, _cta: CtaId, _warp: WarpId) -> WarpInstrStream {
                Box::new(std::iter::empty())
            }
        }
        let cfg = GpuConfig::tiny(4);
        let mut event = GpuSim::with_mode(&cfg, EngineMode::EventDriven);
        let mut naive = GpuSim::with_mode(&cfg, EngineMode::Naive);
        let re = event.run_kernel(&EmptyKernel);
        let rn = naive.run_kernel(&EmptyKernel);
        assert_eq!(re, rn);
        assert_eq!(re.ctas, 3);
    }

    /// Runs `k` under the event-driven and the parallel engine (with
    /// `threads` shard workers) on `cfg`, asserting bit-identical
    /// results and memory-side counters.
    fn assert_parallel_matches(cfg: &GpuConfig, threads: usize, k: &dyn KernelProgram) {
        let mut event = GpuSim::with_mode(cfg, EngineMode::EventDriven);
        let mut par = GpuSim::with_mode(cfg, EngineMode::Parallel);
        par.set_sim_threads(Some(threads));
        event.prefault(k);
        par.prefault(k);
        assert_eq!(par.run_kernel(k), event.run_kernel(k));
        assert_eq!(par.now, event.now, "clocks diverged");
        assert_eq!(par.memory().txns(), event.memory().txns());
        assert_eq!(
            par.memory().inter_gpm_hop_bytes(),
            event.memory().inter_gpm_hop_bytes()
        );
        // The kernel ran sharded or fell back serially (pool held by a
        // concurrent test); either way it was accounted exactly once.
        let p = par.par_stats();
        assert_eq!(p.kernels + p.serial_fallbacks, 1);
    }

    #[test]
    fn parallel_matches_event_driven_on_streams() {
        let k = StreamKernel {
            ctas: 24,
            warps: 4,
            lines_per_warp: 32,
        };
        assert_parallel_matches(&GpuConfig::tiny(4), 4, &k);
    }

    #[test]
    fn parallel_matches_event_driven_on_compute() {
        let k = ComputeKernel {
            ctas: 32,
            warps: 8,
            len: 64,
        };
        assert_parallel_matches(&GpuConfig::tiny(8), 4, &k);
    }

    #[test]
    fn parallel_matches_event_driven_under_gto() {
        let k = StreamKernel {
            ctas: 16,
            warps: 4,
            lines_per_warp: 24,
        };
        let cfg = GpuConfig {
            warp_scheduler: crate::config::WarpScheduler::GreedyThenOldest,
            ..GpuConfig::tiny(4)
        };
        assert_parallel_matches(&cfg, 2, &k);
    }

    #[test]
    fn parallel_single_gpm_runs_inline_without_pool() {
        // One GPM => one shard: the defer/merge machinery runs on the
        // caller thread, cannot fall back, and must still be exact.
        let k = StreamKernel {
            ctas: 8,
            warps: 4,
            lines_per_warp: 16,
        };
        let cfg = GpuConfig::tiny(1);
        let mut event = GpuSim::with_mode(&cfg, EngineMode::EventDriven);
        let mut par = GpuSim::with_mode(&cfg, EngineMode::Parallel);
        par.set_sim_threads(Some(8));
        assert_eq!(par.run_kernel(&k), event.run_kernel(&k));
        let p = par.par_stats();
        assert_eq!(p.kernels, 1, "single-shard runs never fall back");
        assert_eq!(p.serial_fallbacks, 0);
        assert_eq!(p.barrier_waits, 0, "no pool engaged for one shard");
        assert!(p.epochs > 0);
        assert!(p.merged_accesses > 0, "stream kernel defers loads");
    }

    #[test]
    fn parallel_thread_count_exceeding_gpms_degenerates_cleanly() {
        // More threads than GPMs: shard count clamps to the GPM count.
        let k = StreamKernel {
            ctas: 12,
            warps: 4,
            lines_per_warp: 16,
        };
        assert_parallel_matches(&GpuConfig::tiny(2), 16, &k);
    }

    #[test]
    fn parallel_holds_across_multi_kernel_workloads() {
        // Persistent state (L2 contents, page placements, clock) must
        // stay bit-equal launch after launch under the parallel engine.
        let cfg = GpuConfig::tiny(4);
        let launches = vec![
            LaunchSpec::repeated(
                Box::new(StreamKernel {
                    ctas: 16,
                    warps: 4,
                    lines_per_warp: 16,
                }),
                2,
            ),
            LaunchSpec::repeated(
                Box::new(ComputeKernel {
                    ctas: 8,
                    warps: 4,
                    len: 40,
                }),
                1,
            ),
        ];
        let mut event = GpuSim::with_mode(&cfg, EngineMode::EventDriven);
        let mut par = GpuSim::with_mode(&cfg, EngineMode::Parallel);
        par.set_sim_threads(Some(4));
        assert_eq!(par.run_workload(&launches), event.run_workload(&launches));
        assert_eq!(par.now, event.now);
    }

    #[test]
    fn shadow_par_mode_asserts_against_naive_internally() {
        let k = StreamKernel {
            ctas: 8,
            warps: 4,
            lines_per_warp: 16,
        };
        let cfg = GpuConfig::tiny(2);
        let mut shadow = GpuSim::with_mode(&cfg, EngineMode::ShadowPar);
        shadow.set_sim_threads(Some(2));
        let mut event = GpuSim::with_mode(&cfg, EngineMode::EventDriven);
        assert_eq!(shadow.run_kernel(&k), event.run_kernel(&k));
        assert_eq!(shadow.mode(), EngineMode::ShadowPar);
    }

    #[test]
    fn parallel_empty_grid_degenerates_cleanly() {
        struct EmptyKernel;
        impl KernelProgram for EmptyKernel {
            fn name(&self) -> &str {
                "empty"
            }
            fn grid(&self) -> GridShape {
                GridShape::new(3, 2)
            }
            fn warp_instructions(&self, _cta: CtaId, _warp: WarpId) -> WarpInstrStream {
                Box::new(std::iter::empty())
            }
        }
        assert_parallel_matches(&GpuConfig::tiny(4), 4, &EmptyKernel);
    }

    #[test]
    fn serial_modes_leave_parallel_stats_untouched() {
        let mut sim = GpuSim::with_mode(&GpuConfig::tiny(2), EngineMode::EventDriven);
        sim.run_kernel(&ComputeKernel {
            ctas: 4,
            warps: 2,
            len: 16,
        });
        assert_eq!(sim.par_stats(), crate::par::ParStats::default());
    }
}
