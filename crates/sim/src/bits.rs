//! Multi-word bitmask sets scanned with `trailing_zeros`.
//!
//! The data-oriented engine core tracks per-SM warp populations (live
//! warps, exhausted warps, free CTA slots) and per-simulation SM
//! populations (SMs with pending wakeups) as dense bitmasks instead of
//! `Vec` membership scans. A [`BitWords`] is a tiny growable array of
//! `u64` words; all hot queries (`first_set`, `iter_set`, `any`)
//! compile down to word loads plus a `trailing_zeros` instruction, so
//! scanning a 64-warp SM for a free slot costs one or two instructions
//! instead of a pointer-chasing loop.
//!
//! Capacity is fixed at construction (or by the highest `grow_to`
//! call); setting a bit beyond capacity is a logic error and panics in
//! debug builds via the underlying slice index.

/// A fixed-capacity set of small integers stored as packed `u64` words.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitWords {
    words: Vec<u64>,
}

impl BitWords {
    /// An empty set able to hold members `0..bits`.
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    /// Ensures the set can hold members `0..bits`, preserving contents.
    pub fn grow_to(&mut self, bits: usize) {
        let words = bits.div_ceil(64);
        if words > self.words.len() {
            self.words.resize(words, 0);
        }
    }

    /// Removes every member (capacity is retained).
    #[inline]
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Inserts `bit` into the set.
    #[inline]
    pub fn set(&mut self, bit: usize) {
        self.words[bit / 64] |= 1u64 << (bit % 64);
    }

    /// Removes `bit` from the set.
    #[inline]
    pub fn unset(&mut self, bit: usize) {
        self.words[bit / 64] &= !(1u64 << (bit % 64));
    }

    /// Whether `bit` is a member.
    #[inline]
    pub fn get(&self, bit: usize) -> bool {
        self.words
            .get(bit / 64)
            .is_some_and(|w| w & (1u64 << (bit % 64)) != 0)
    }

    /// Whether the set is non-empty.
    #[inline]
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// The smallest member, or `None` when empty. This is the
    /// find-first-free / find-first-ready primitive: a linear scan over
    /// words, one `trailing_zeros` on the first non-zero word.
    #[inline]
    pub fn first_set(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(i * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// The smallest member within `start..start + len`, or `None` when
    /// that range holds no members. Used for per-SM sub-ranges of
    /// GPU-global masks (e.g. the free-CTA-slot scan): only the one or
    /// two words overlapping the range are touched.
    #[inline]
    pub fn first_set_in(&self, start: usize, len: usize) -> Option<usize> {
        if len == 0 {
            return None;
        }
        let end = start + len;
        let mut wi = start / 64;
        let last = (end - 1) / 64;
        while wi <= last {
            let mut w = *self.words.get(wi)?;
            if wi == start / 64 {
                w &= !0u64 << (start % 64);
            }
            if wi == last && !end.is_multiple_of(64) {
                w &= (1u64 << (end % 64)) - 1;
            }
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
            wi += 1;
        }
        None
    }

    /// Number of backing `u64` words.
    #[inline]
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// The `i`-th backing word (members `i*64..(i+1)*64` as packed
    /// bits). Lets callers iterate a snapshot of a word while unsetting
    /// members of the live set mid-walk.
    #[inline]
    pub fn word(&self, i: usize) -> u64 {
        self.words[i]
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates members in ascending order by repeatedly clearing the
    /// lowest set bit of a word copy (`w & (w - 1)`).
    pub fn iter_set(&self) -> SetBits<'_> {
        SetBits {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Ascending iterator over the members of a [`BitWords`].
#[derive(Debug)]
pub struct SetBits<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for SetBits<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            self.current = *self.words.get(self.word_idx)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_members() {
        let b = BitWords::with_capacity(130);
        assert!(!b.any());
        assert_eq!(b.first_set(), None);
        assert_eq!(b.count(), 0);
        assert_eq!(b.iter_set().count(), 0);
        assert!(!b.get(0));
        assert!(!b.get(500)); // out of capacity reads as absent
    }

    #[test]
    fn set_unset_get_roundtrip_across_word_boundary() {
        let mut b = BitWords::with_capacity(130);
        // Members straddling the 64-bit word boundaries, including the
        // exact boundary values the scheduler masks care about.
        for bit in [0, 1, 62, 63, 64, 65, 127, 128, 129] {
            assert!(!b.get(bit));
            b.set(bit);
            assert!(b.get(bit), "bit {bit}");
        }
        assert_eq!(b.count(), 9);
        assert_eq!(
            b.iter_set().collect::<Vec<_>>(),
            vec![0, 1, 62, 63, 64, 65, 127, 128, 129]
        );
        b.unset(63);
        b.unset(64);
        assert!(!b.get(63));
        assert!(!b.get(64));
        assert_eq!(b.count(), 7);
    }

    #[test]
    fn first_set_finds_lowest_member() {
        let mut b = BitWords::with_capacity(200);
        assert_eq!(b.first_set(), None);
        b.set(190);
        assert_eq!(b.first_set(), Some(190));
        b.set(65);
        assert_eq!(b.first_set(), Some(65));
        b.set(3);
        assert_eq!(b.first_set(), Some(3));
        b.unset(3);
        b.unset(65);
        assert_eq!(b.first_set(), Some(190));
    }

    #[test]
    fn clear_empties_but_keeps_capacity() {
        let mut b = BitWords::with_capacity(100);
        b.set(99);
        b.clear();
        assert!(!b.any());
        b.set(99); // still within capacity after clear
        assert_eq!(b.first_set(), Some(99));
    }

    #[test]
    fn grow_to_preserves_members() {
        let mut b = BitWords::with_capacity(10);
        b.set(7);
        b.grow_to(300);
        assert!(b.get(7));
        b.set(299);
        assert_eq!(b.iter_set().collect::<Vec<_>>(), vec![7, 299]);
        // Shrinking requests are ignored.
        b.grow_to(1);
        assert!(b.get(299));
    }

    #[test]
    fn first_set_in_respects_range_bounds() {
        let mut b = BitWords::with_capacity(256);
        for bit in [3, 63, 64, 65, 130, 200] {
            b.set(bit);
        }
        assert_eq!(b.first_set_in(0, 256), Some(3));
        assert_eq!(b.first_set_in(4, 256 - 4), Some(63));
        assert_eq!(b.first_set_in(64, 64), Some(64));
        assert_eq!(b.first_set_in(65, 63), Some(65));
        assert_eq!(b.first_set_in(66, 62), None);
        assert_eq!(b.first_set_in(66, 65), Some(130));
        assert_eq!(b.first_set_in(131, 69), None); // 131..200 excludes 200
        assert_eq!(b.first_set_in(131, 70), Some(200));
        assert_eq!(b.first_set_in(0, 0), None);
        assert_eq!(b.first_set_in(3, 1), Some(3));
        assert_eq!(b.first_set_in(2, 1), None);
    }

    #[test]
    fn first_set_in_matches_reference_over_dense_pattern() {
        let mut b = BitWords::with_capacity(200);
        for i in (0..200).filter(|i| i % 5 == 0) {
            b.set(i);
        }
        for start in 0..200 {
            for len in [0, 1, 5, 64, 65, 200 - start] {
                let expected = (start..(start + len).min(200)).find(|&i| b.get(i));
                assert_eq!(
                    b.first_set_in(start, len),
                    expected,
                    "start={start} len={len}"
                );
            }
        }
    }

    #[test]
    fn iter_set_matches_reference_over_dense_pattern() {
        let mut b = BitWords::with_capacity(256);
        let expected: Vec<usize> = (0..256).filter(|i| i % 3 == 0 || i % 7 == 0).collect();
        for &i in &expected {
            b.set(i);
        }
        assert_eq!(b.iter_set().collect::<Vec<_>>(), expected);
        assert_eq!(b.count(), expected.len());
    }
}
