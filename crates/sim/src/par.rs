//! The parallel (sharded) engine: one simulation spread across GPM
//! shards in lockstep epochs, bit-identical to the serial engines.
//!
//! `run_shards` partitions the GPU's GPMs into contiguous shards, one
//! per worker thread. Every epoch is exactly one visited cycle of the
//! serial event-driven loop, split in two phases:
//!
//! * **Phase A (parallel):** each shard runs the full per-cycle SM walk
//!   (`EventLoopState::visit`) over its own warp pool, with memory
//!   traffic *deferred* — recorded in a shard-local queue in poll order
//!   instead of touching the shared [`MemorySystem`].
//! * **Phase B (serial):** after a barrier, the coordinator drains
//!   every queue in ascending shard order (`merge_deferred`), which
//!   replays the accesses against the memory system in exactly the
//!   order the serial engine would have issued them, patches each
//!   shard's warp state with the real outcomes, and advances the clock.
//!
//! The full determinism argument (why a deferred access can carry a
//! placeholder completion for one phase without perturbing any
//! decision, and why the merge order equals the serial poll order) is
//! DESIGN.md §17. The contract is load-bearing: `EngineMode::Parallel`
//! must stay bit-identical to `EngineMode::EventDriven` forever, and
//! `EngineMode::ShadowPar` plus the equivalence proptests enforce it.
//!
//! Shard workers come from a process-wide [`runtime::ThreadPool`]
//! guarded by a `try_lock`: when several simulations run concurrently
//! (e.g. under the sweep executor, whose own pool must never block on
//! ours — that way lies deadlock), all but the lock holder fall back to
//! the serial event loop, which is bit-identical anyway.

use crate::engine::{
    debug_assert_no_skip, merge_deferred, shard_state, DeferredAccess, EventLoopState,
    FastForwardStats, KernelCtx, KernelState, MemSink, SoaStats,
};
use crate::memory::MemorySystem;
use isa::EventCounts;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Environment variable overriding how many worker threads one
/// simulation may shard across under `EngineMode::Parallel` (distinct
/// from `MMGPU_THREADS`, which sizes the *sweep* pool). Read once per
/// process; [`crate::GpuSim::set_sim_threads`] overrides it per
/// simulator.
pub const SIM_THREADS_ENV: &str = "MMGPU_SIM_THREADS";

/// Counters describing the parallel engine's execution, accumulated
/// across every kernel a [`crate::GpuSim`] has run. Exported to the
/// trace layer as `sim.par.*` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParStats {
    /// Kernels that ran through the sharded epoch loop.
    pub kernels: u64,
    /// Lockstep epochs executed (one per visited cycle).
    pub epochs: u64,
    /// Deferred memory accesses replayed at epoch merges.
    pub merged_accesses: u64,
    /// Barrier crossings by shard workers (2 per epoch per shard when
    /// the worker pool is engaged; 0 for single-shard runs).
    pub barrier_waits: u64,
    /// Kernels that fell back to the serial event-driven loop because
    /// the shard worker pool was held by another simulation. Results
    /// are bit-identical either way.
    pub serial_fallbacks: u64,
}

/// Resolves the default shard-thread budget: `MMGPU_SIM_THREADS`, then
/// the machine's available parallelism, at least 1.
pub(crate) fn default_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var(SIM_THREADS_ENV) {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
            eprintln!("warning: ignoring unparsable {SIM_THREADS_ENV}={v:?}");
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The process-wide shard-worker pool. `try_lock` (never a blocking
/// lock): a simulation that cannot take it immediately runs serially
/// instead. Blocking here could deadlock — a parallel simulation may
/// itself be running *on* a sweep-executor worker, and barrier-parked
/// shard jobs must never wait behind another simulation's jobs.
static PAR_POOL: Mutex<Option<runtime::ThreadPool>> = Mutex::new(None);

/// A sense-reversing spin barrier for lockstep epochs.
///
/// Shard epochs are microseconds long, so parking on a condvar per
/// epoch would dominate; spinning with a `yield_now` escape hatch (the
/// barrier must also make progress when threads outnumber cores) is the
/// right trade. The barrier is *poisonable*: a panicking participant
/// releases the others into a panic instead of a permanent spin.
struct SpinBarrier {
    parties: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
    poisoned: AtomicBool,
}

impl SpinBarrier {
    fn new(parties: usize) -> Self {
        SpinBarrier {
            parties,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Blocks until all `parties` threads have arrived. The chain of
    /// arrival RMWs plus the release of the generation bump make every
    /// pre-barrier write visible to every post-barrier read.
    fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            self.count.store(0, Ordering::Release);
            self.generation
                .store(generation.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                if self.poisoned.load(Ordering::Acquire) {
                    panic!("parallel-engine barrier poisoned by a panicking shard");
                }
                spins += 1;
                if spins > 128 {
                    // Essential when shards outnumber cores.
                    std::thread::yield_now();
                }
            }
        }
        if self.poisoned.load(Ordering::Acquire) {
            panic!("parallel-engine barrier poisoned by a panicking shard");
        }
    }

    /// Releases every current and future waiter into a panic.
    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        self.generation.fetch_add(1, Ordering::AcqRel);
    }
}

/// Poisons the barrier if the holder unwinds, so the remaining shards
/// panic out of their spin loops instead of hanging the process.
struct PoisonOnPanic<'a>(&'a SpinBarrier);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// One shard: a contiguous GPM range's warp state, event-loop
/// bookkeeping, deferred-traffic queue, and private statistics.
struct Shard {
    st: KernelState,
    els: EventLoopState,
    queue: Vec<DeferredAccess>,
    /// Whether any warp in this shard issued during the last phase A.
    issued_any: bool,
    sm_steps: u64,
    soa: SoaStats,
}

impl Shard {
    fn new(ctx: &KernelCtx<'_>, max_ctas_per_sm: usize, lo: usize, hi: usize, start: u64) -> Self {
        let mut els = EventLoopState::default();
        els.reset((hi - lo) * ctx.sms_per_gpm, start);
        Shard {
            st: shard_state(ctx, max_ctas_per_sm, lo, hi),
            els,
            queue: Vec::new(),
            issued_any: false,
            sm_steps: 0,
            soa: SoaStats::default(),
        }
    }
}

/// Interior-mutable shard slot. Safety rests on the phase discipline:
/// during phase A, shard `k` is touched only by its worker (the
/// coordinator doubles as shard 0's worker); between the two barriers,
/// only the coordinator touches any shard. The barriers order the
/// hand-offs.
struct ShardCell(UnsafeCell<Shard>);

// SAFETY: see the phase discipline on `ShardCell` — no two threads ever
// access the same shard concurrently, and barrier crossings establish
// happens-before between owners.
unsafe impl Sync for ShardCell {}

/// Clock values the coordinator publishes to the shard workers each
/// epoch, between the two barriers.
struct EpochClock {
    now: AtomicU64,
    stop: AtomicBool,
}

/// Phase A for one shard: run the standard per-cycle SM walk with all
/// memory traffic deferred into the shard's queue.
fn phase_a(shard: &mut Shard, ctx: &KernelCtx<'_>, now: u64) {
    debug_assert!(shard.queue.is_empty());
    let mut sink = MemSink::Defer(&mut shard.queue);
    shard.issued_any = shard.els.visit(
        ctx,
        &mut shard.st,
        &mut sink,
        &mut shard.soa,
        &mut shard.sm_steps,
        now,
    );
}

/// The epoch loop, run by the coordinator (with `sync` engaged) or
/// inline for a single shard (`sync == None`). Returns the final
/// visited cycle plus the epoch and merged-access totals.
///
/// # Safety contract (not `unsafe fn`, but load-bearing)
/// With `sync` engaged the caller must guarantee that shard workers
/// `1..shards.len()` run the matching barrier pattern: phase A on their
/// own shard, `wait`, idle while this function merges, `wait`, repeat.
fn epoch_loop(
    mem: &mut MemorySystem,
    ff: &mut FastForwardStats,
    ctx: &KernelCtx<'_>,
    shards: &[ShardCell],
    start: u64,
    sync: Option<(&SpinBarrier, &EpochClock)>,
) -> (u64, u64, u64) {
    let mut now = start;
    let mut epochs = 0u64;
    let mut merged = 0u64;
    loop {
        epochs += 1;
        ff.visited_cycles += 1;
        // SAFETY: phase A — the coordinator is shard 0's worker.
        phase_a(unsafe { &mut *shards[0].0.get() }, ctx, now);
        if let Some((barrier, _)) = sync {
            barrier.wait();
        }

        // Phase B: every worker is parked at the barrier, so the
        // coordinator has exclusive access to all shards. Ascending
        // shard order + in-shard poll order == the serial engine's
        // access order (shards are contiguous ascending GPM ranges).
        let mut issued_any = false;
        let mut live = 0usize;
        for cell in shards {
            // SAFETY: phase B exclusivity, above.
            let shard = unsafe { &mut *cell.0.get() };
            issued_any |= shard.issued_any;
            merged += merge_deferred(
                mem,
                ctx,
                &mut shard.st,
                &mut shard.els,
                &mut shard.queue,
                now,
            );
            live += shard.els.live;
        }

        let stop = live == 0;
        let next = if stop {
            now
        } else if issued_any {
            now + 1
        } else {
            let mut min_ready = u64::MAX;
            for cell in shards {
                // SAFETY: phase B exclusivity, above.
                min_ready = min_ready.min(unsafe { &*cell.0.get() }.els.min_wake());
            }
            if min_ready == u64::MAX {
                now + 1
            } else {
                min_ready.max(now + 1)
            }
        };
        if !stop && next > now + 1 {
            for cell in shards {
                // SAFETY: phase B exclusivity, above.
                debug_assert_no_skip(&unsafe { &*cell.0.get() }.st, now, next);
            }
            ff.jumps += 1;
            ff.skipped_cycles += next - now - 1;
        }

        if let Some((barrier, clock)) = sync {
            clock.now.store(next, Ordering::Release);
            clock.stop.store(stop, Ordering::Release);
            barrier.wait();
        }
        if stop {
            break;
        }
        now = next;
    }
    (now, epochs, merged)
}

/// Runs one kernel through the sharded epoch engine.
///
/// Returns `None` when the worker pool is unavailable (held by a
/// concurrent simulation); the caller then runs the serial event loop,
/// which produces bit-identical results. A single-shard run (one GPM,
/// one thread, or `threads >= num_gpms == 1`) executes the full
/// defer/merge machinery inline without touching the pool.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_shards(
    mem: &mut MemorySystem,
    par: &mut ParStats,
    ff: &mut FastForwardStats,
    soa: &mut SoaStats,
    ctx: &KernelCtx<'_>,
    max_ctas_per_sm: usize,
    threads: usize,
    start: u64,
) -> Option<(u64, EventCounts, u32)> {
    let num_gpms = ctx.partition.num_gpms;
    // Shards own whole GPMs; threads beyond the GPM count go unused.
    let shard_count = threads.min(num_gpms).max(1);

    // Contiguous, near-even GPM ranges in ascending order (the merge
    // order contract requires ascending).
    let shards: Vec<ShardCell> = (0..shard_count)
        .map(|k| {
            let lo = k * num_gpms / shard_count;
            let hi = (k + 1) * num_gpms / shard_count;
            ShardCell(UnsafeCell::new(Shard::new(
                ctx,
                max_ctas_per_sm,
                lo,
                hi,
                start,
            )))
        })
        .collect();

    let (now, epochs, merged) = if shard_count == 1 {
        epoch_loop(mem, ff, ctx, &shards, start, None)
    } else {
        // Exclusive, non-blocking claim on the process-wide pool (see
        // `PAR_POOL`); grow it if a bigger simulation needs more
        // workers than any before it.
        let mut guard = PAR_POOL.try_lock().ok()?;
        let workers = shard_count - 1; // the caller thread is shard 0
        if guard.as_ref().is_none_or(|p| p.threads() < workers) {
            *guard = Some(runtime::ThreadPool::new(workers));
        }
        let pool = guard.as_ref().expect("pool just ensured");

        let barrier = SpinBarrier::new(shard_count);
        let clock = EpochClock {
            now: AtomicU64::new(start),
            stop: AtomicBool::new(false),
        };
        let shards_ref = &shards;
        let barrier_ref = &barrier;
        let clock_ref = &clock;
        pool.scope(|scope| {
            for cell in shards_ref.iter().skip(1) {
                scope.spawn(move || {
                    let _guard = PoisonOnPanic(barrier_ref);
                    loop {
                        let now = clock_ref.now.load(Ordering::Acquire);
                        // SAFETY: phase A — this worker owns this shard
                        // exclusively; the reference is re-derived each
                        // epoch so none is live while the coordinator
                        // merges.
                        phase_a(unsafe { &mut *cell.0.get() }, ctx, now);
                        barrier_ref.wait();
                        // The coordinator merges between the barriers.
                        barrier_ref.wait();
                        if clock_ref.stop.load(Ordering::Acquire) {
                            break;
                        }
                    }
                });
            }
            let _guard = PoisonOnPanic(barrier_ref);
            epoch_loop(
                mem,
                ff,
                ctx,
                shards_ref,
                start,
                Some((barrier_ref, clock_ref)),
            )
        })
    };

    // Drain: charge every shard's trailing idle cycles, then fold the
    // per-shard counts in ascending shard order.
    let mut counts = EventCounts::new();
    let mut done_ctas = 0u32;
    for cell in &shards {
        let shard = unsafe { &mut *cell.0.get() };
        shard.els.flush_idle(&mut shard.st, now + 1);
        counts.merge_sequential(&shard.st.counts);
        done_ctas += shard.st.done_ctas;
        ff.sm_steps += shard.sm_steps;
        soa.mask_scans += shard.soa.mask_scans;
        soa.retire_scans_skipped += shard.soa.retire_scans_skipped;
    }

    par.kernels += 1;
    par.epochs += epochs;
    par.merged_accesses += merged;
    if shard_count > 1 {
        par.barrier_waits += epochs * 2 * shard_count as u64;
    }
    Some((now, counts, done_ctas))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::engine::{EngineMode, GpuSim};
    use common::{CtaId, WarpId};
    use isa::{GridShape, KernelProgram, MemRef, WarpInstr, WarpInstrStream};

    struct Mixed;
    impl KernelProgram for Mixed {
        fn name(&self) -> &str {
            "mixed"
        }
        fn grid(&self) -> GridShape {
            GridShape::new(16, 4)
        }
        fn warp_instructions(&self, cta: CtaId, warp: WarpId) -> WarpInstrStream {
            let base = (cta.0 as u64 * 4 + warp.0 as u64) * 4096;
            Box::new((0..24u64).flat_map(move |i| {
                [
                    WarpInstr::Mem(MemRef::global_load(base + i * 128)),
                    WarpInstr::Compute(isa::Opcode::FFma32),
                    WarpInstr::Mem(MemRef::global_store(base + i * 128 + 64)),
                ]
            }))
        }
    }

    #[test]
    fn pooled_shards_engage_and_stay_bit_identical() {
        // The equality half never flakes; the "pool actually engaged"
        // half retries to tolerate transient PAR_POOL contention from
        // sibling tests (contenders fall back serially by design).
        let cfg = GpuConfig::tiny(2);
        for _ in 0..64 {
            let mut event = GpuSim::with_mode(&cfg, EngineMode::EventDriven);
            let mut par = GpuSim::with_mode(&cfg, EngineMode::Parallel);
            par.set_sim_threads(Some(2));
            assert_eq!(par.run_kernel(&Mixed), event.run_kernel(&Mixed));
            let p = par.par_stats();
            if p.kernels == 1 {
                assert!(p.epochs > 0);
                assert!(p.merged_accesses > 0);
                assert_eq!(p.barrier_waits, p.epochs * 2 * 2);
                return;
            }
        }
        panic!("pooled shard path never engaged in 64 attempts");
    }

    #[test]
    fn barrier_releases_all_parties() {
        let barrier = SpinBarrier::new(3);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    for _ in 0..100 {
                        barrier.wait();
                    }
                });
            }
            for _ in 0..100 {
                barrier.wait();
            }
        });
    }

    #[test]
    fn poisoned_barrier_panics_waiters_instead_of_hanging() {
        let barrier = SpinBarrier::new(2);
        let waiter = std::thread::scope(|s| {
            let handle = s.spawn(|| {
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    barrier.wait();
                }));
                caught.is_err()
            });
            barrier.poison();
            handle.join().unwrap()
        });
        assert!(waiter, "poisoned barrier must panic its waiters");
    }

    #[test]
    fn default_threads_is_at_least_one() {
        assert!(default_threads() >= 1);
    }
}
