//! Inter-GPM interconnection networks: ring, high-radix switch, ideal.
//!
//! The ring consumes link bandwidth on **every traversed hop**, which is
//! what amplifies NUMA bandwidth pressure at high GPM counts (§V-B); the
//! switch reaches any module in one traversal at the cost of an extra
//! per-bit energy premium (§V-C); the ideal network models the monolithic
//! comparison point.

use crate::bw::BwResource;
use crate::config::{GpuConfig, Topology};
use common::GpmId;

/// The inter-module network.
#[derive(Debug, Clone)]
pub struct Noc {
    topology: Topology,
    num_gpms: usize,
    link_latency: u64,
    switch_latency: u64,
    /// Ring: clockwise directed links, `cw[i]` carries `i → (i+1) % N`.
    cw: Vec<BwResource>,
    /// Ring: counter-clockwise directed links, `ccw[i]` carries
    /// `i → (i−1+N) % N`.
    ccw: Vec<BwResource>,
    /// Switch: per-GPM uplinks (GPM → switch).
    up: Vec<BwResource>,
    /// Switch: per-GPM downlinks (switch → GPM).
    down: Vec<BwResource>,
    hop_bytes: u64,
    transfer_bytes: u64,
    switch_bytes: u64,
    transfers: u64,
    tie_breaker: u64,
    compression: f64,
}

impl Noc {
    /// Builds the network for a GPU configuration.
    pub fn new(cfg: &GpuConfig) -> Self {
        let n = cfg.num_gpms;
        let clock = cfg.gpm.clock;
        let per_gpm = cfg.inter_gpm_bw.bytes_per_cycle(clock);
        let (cw, ccw, up, down) = match cfg.topology {
            Topology::Ring => {
                // Per-GPM I/O bandwidth splits over the two egress
                // directions.
                let link = per_gpm / 2.0;
                (
                    (0..n).map(|_| BwResource::new(link)).collect(),
                    (0..n).map(|_| BwResource::new(link)).collect(),
                    Vec::new(),
                    Vec::new(),
                )
            }
            Topology::Switch => (
                Vec::new(),
                Vec::new(),
                (0..n).map(|_| BwResource::new(per_gpm)).collect(),
                (0..n).map(|_| BwResource::new(per_gpm)).collect(),
            ),
            Topology::Ideal => (Vec::new(), Vec::new(), Vec::new(), Vec::new()),
        };
        Noc {
            topology: cfg.topology,
            num_gpms: n,
            link_latency: cfg.link_latency,
            switch_latency: cfg.switch_latency,
            cw,
            ccw,
            up,
            down,
            hop_bytes: 0,
            transfer_bytes: 0,
            switch_bytes: 0,
            transfers: 0,
            tie_breaker: 0,
            compression: cfg.link_compression.max(1.0),
        }
    }

    /// Shortest ring distance and direction between two modules:
    /// `(hops, clockwise)`. Ties alternate via an internal counter so both
    /// half-ring directions carry load.
    fn ring_route(&mut self, src: usize, dst: usize) -> (usize, bool) {
        let n = self.num_gpms;
        let cw_dist = (dst + n - src) % n;
        let ccw_dist = (src + n - dst) % n;
        if cw_dist < ccw_dist {
            (cw_dist, true)
        } else if ccw_dist < cw_dist {
            (ccw_dist, false)
        } else {
            self.tie_breaker = self.tie_breaker.wrapping_add(1);
            (cw_dist, self.tie_breaker.is_multiple_of(2))
        }
    }

    /// Transfers `bytes` from `src` to `dst`, starting no earlier than
    /// cycle `now`; returns the arrival cycle. Same-module transfers are
    /// free and instant.
    ///
    /// Routing is pipelined (wormhole-style): every link on the path
    /// reserves bandwidth at `now`, and the arrival time is the slowest
    /// link's queue completion plus the path's cumulative hop latency.
    /// Acquiring at `now` (rather than chaining each hop's future
    /// completion into the next) keeps the fluid queues fed in FIFO time
    /// order, which they require to be stable.
    pub fn transfer(&mut self, src: GpmId, dst: GpmId, bytes: u64, now: u64) -> u64 {
        let (queue_ready, latency) = self.transfer_queued(src, dst, bytes, now);
        queue_ready + latency
    }

    /// Like [`Noc::transfer`] but returns `(queue_ready, path_latency)`
    /// separately, so a caller composing a round trip can pipeline queue
    /// delays while keeping the physical latencies serial.
    pub fn transfer_queued(&mut self, src: GpmId, dst: GpmId, bytes: u64, now: u64) -> (u64, u64) {
        if src == dst || self.num_gpms <= 1 {
            return (now, 0);
        }
        self.transfers += 1;
        // Link compression (§V-E extension): fewer bytes on the wire.
        let bytes = ((bytes as f64 / self.compression).ceil() as u64).max(1);
        if self.topology != Topology::Ideal {
            self.transfer_bytes += bytes;
        }
        match self.topology {
            Topology::Ideal => (now, 0),
            Topology::Ring => {
                let (dist, clockwise) = self.ring_route(src.index(), dst.index());
                debug_assert!(dist >= 1);
                self.hop_bytes += dist as u64 * bytes;
                let n = self.num_gpms;
                let mut slowest = now;
                let mut node = src.index();
                for _ in 0..dist {
                    let link = if clockwise {
                        let l = &mut self.cw[node];
                        node = (node + 1) % n;
                        l
                    } else {
                        let l = &mut self.ccw[node];
                        node = (node + n - 1) % n;
                        l
                    };
                    slowest = slowest.max(link.acquire(bytes, now));
                }
                (slowest, dist as u64 * self.link_latency)
            }
            Topology::Switch => {
                // GPM → switch → GPM: two physical link traversals plus
                // the switch itself.
                self.hop_bytes += 2 * bytes;
                self.switch_bytes += bytes;
                let up = self.up[src.index()].acquire(bytes, now);
                let down = self.down[dst.index()].acquire(bytes, now);
                (up.max(down), 2 * self.link_latency + self.switch_latency)
            }
        }
    }

    /// Total bytes × hops carried over point-to-point links.
    pub fn hop_bytes(&self) -> u64 {
        self.hop_bytes
    }

    /// Total bytes moved between modules, counted once per transfer
    /// (end-to-end; the energy model's input).
    pub fn transfer_bytes(&self) -> u64 {
        self.transfer_bytes
    }

    /// Total bytes routed through the switch.
    pub fn switch_bytes(&self) -> u64 {
        self.switch_bytes
    }

    /// Number of inter-module transfers.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Per-link `(bytes_served, backlog_until)` for all links in the
    /// order cw, ccw, up, down (diagnostics).
    pub fn link_stats(&self) -> Vec<(u64, u64)> {
        self.cw
            .iter()
            .chain(&self.ccw)
            .chain(&self.up)
            .chain(&self.down)
            .map(|l| (l.bytes_served(), l.backlog_until()))
            .collect()
    }

    /// Maximum backlog horizon across all links (diagnostics).
    pub fn max_backlog(&self) -> u64 {
        self.cw
            .iter()
            .chain(&self.ccw)
            .chain(&self.up)
            .chain(&self.down)
            .map(BwResource::backlog_until)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BwSetting, GpuConfig};

    fn ring(n: usize) -> Noc {
        Noc::new(&GpuConfig::paper(n, BwSetting::X2, Topology::Ring))
    }

    fn switch(n: usize) -> Noc {
        Noc::new(&GpuConfig::paper(n, BwSetting::X1, Topology::Switch))
    }

    #[test]
    fn same_module_is_free() {
        let mut noc = ring(8);
        assert_eq!(noc.transfer(GpmId::new(3), GpmId::new(3), 1 << 20, 42), 42);
        assert_eq!(noc.hop_bytes(), 0);
        assert_eq!(noc.transfers(), 0);
    }

    #[test]
    fn ring_counts_bytes_per_hop() {
        let mut noc = ring(8);
        // 0 -> 3: 3 hops clockwise.
        noc.transfer(GpmId::new(0), GpmId::new(3), 128, 0);
        assert_eq!(noc.hop_bytes(), 3 * 128);
        // 0 -> 7 is 1 hop counter-clockwise.
        noc.transfer(GpmId::new(0), GpmId::new(7), 128, 0);
        assert_eq!(noc.hop_bytes(), 4 * 128);
    }

    #[test]
    fn ring_latency_grows_with_distance() {
        let mut noc = ring(16);
        let near = noc.transfer(GpmId::new(0), GpmId::new(1), 128, 0);
        let far = noc.transfer(GpmId::new(0), GpmId::new(8), 128, 0);
        assert!(far > near, "8 hops ({far}) should beat 1 hop ({near})");
    }

    #[test]
    fn ring_half_distance_alternates_direction() {
        let mut noc = ring(4);
        // 0 -> 2 is distance 2 both ways; consecutive transfers should not
        // all hammer the same links.
        let t1 = noc.transfer(GpmId::new(0), GpmId::new(2), 1 << 16, 0);
        let t2 = noc.transfer(GpmId::new(0), GpmId::new(2), 1 << 16, 0);
        // If both went the same way the second would queue behind the
        // first; alternation means they complete at the same cycle.
        assert_eq!(t1, t2);
    }

    #[test]
    fn ring_saturation_queues() {
        let mut noc = ring(8);
        let first = noc.transfer(GpmId::new(0), GpmId::new(1), 1 << 20, 0);
        let second = noc.transfer(GpmId::new(0), GpmId::new(1), 1 << 20, 0);
        assert!(second > first);
    }

    #[test]
    fn switch_is_two_link_traversals() {
        let mut noc = switch(16);
        noc.transfer(GpmId::new(0), GpmId::new(9), 128, 0);
        assert_eq!(noc.hop_bytes(), 2 * 128);
        assert_eq!(noc.switch_bytes(), 128);
    }

    #[test]
    fn switch_distance_is_uniform() {
        let mut a = switch(16);
        let near = a.transfer(GpmId::new(0), GpmId::new(1), 128, 0);
        let mut b = switch(16);
        let far = b.transfer(GpmId::new(0), GpmId::new(8), 128, 0);
        assert_eq!(near, far);
    }

    #[test]
    fn switch_beats_ring_at_scale_for_far_traffic() {
        // Same per-GPM I/O bandwidth; the ring pays per hop.
        let mut r = Noc::new(&GpuConfig::paper(32, BwSetting::X1, Topology::Ring));
        let mut s = Noc::new(&GpuConfig::paper(32, BwSetting::X1, Topology::Switch));
        let mut ring_done = 0;
        let mut switch_done = 0;
        for i in 0..64u64 {
            let dst = GpmId::new(16);
            ring_done = r.transfer(GpmId::new((i % 8) as u16), dst, 4096, 0);
            switch_done = s.transfer(GpmId::new((i % 8) as u16), dst, 4096, 0);
        }
        assert!(
            switch_done < ring_done,
            "switch {switch_done} should finish before ring {ring_done}"
        );
    }

    #[test]
    fn ideal_network_is_free_and_instant() {
        let cfg = GpuConfig::paper(8, BwSetting::X2, Topology::Ideal);
        let mut noc = Noc::new(&cfg);
        assert_eq!(noc.transfer(GpmId::new(0), GpmId::new(5), 1 << 20, 17), 17);
        assert_eq!(noc.hop_bytes(), 0);
        assert_eq!(noc.switch_bytes(), 0);
        assert_eq!(noc.max_backlog(), 0);
    }

    #[test]
    fn compression_reduces_wire_bytes_and_time() {
        let mut cfg = GpuConfig::paper(8, BwSetting::X1, Topology::Ring);
        let mut plain = Noc::new(&cfg);
        cfg.link_compression = 2.0;
        let mut packed = Noc::new(&cfg);
        let mut t_plain = 0;
        let mut t_packed = 0;
        for _ in 0..64 {
            t_plain = plain.transfer(GpmId::new(0), GpmId::new(1), 4096, 0);
            t_packed = packed.transfer(GpmId::new(0), GpmId::new(1), 4096, 0);
        }
        assert_eq!(packed.transfer_bytes() * 2, plain.transfer_bytes());
        assert!(
            t_packed < t_plain,
            "compressed transfers should drain faster: {t_packed} vs {t_plain}"
        );
    }

    #[test]
    fn two_gpm_ring_uses_both_parallel_links() {
        let mut noc = ring(2);
        let t1 = noc.transfer(GpmId::new(0), GpmId::new(1), 1 << 16, 0);
        let t2 = noc.transfer(GpmId::new(0), GpmId::new(1), 1 << 16, 0);
        assert_eq!(t1, t2, "opposite-direction links should both carry load");
    }
}
