//! Arena-backed tracking of in-flight memory fills.
//!
//! Each GPM's module-side L2 tracks lines with an outstanding fill so
//! later misses merge with the in-flight request instead of charging
//! DRAM twice. The original implementation kept a `HashMap<u64, u64>`
//! (line → ready cycle) per GPM, which allocates per entry, hashes with
//! SipHash, and — because nothing ever removed entries whose fill had
//! long since landed — grew monotonically between kernel boundaries.
//!
//! [`InflightTable`] replaces it with a slab of parallel columns
//! indexed by small slot ids, a FNV-1a open-addressing index over line
//! addresses, and a *sorted wheel* (a min-heap keyed on ready cycle)
//! that retires expired entries in O(log n) as simulated time advances.
//!
//! # Expiry is behavior-identical
//!
//! [`expire`](InflightTable::expire)`(now)` drops entries with
//! `ready <= now`. Every consumer of the old map removed-or-ignored
//! such entries anyway:
//!
//! * the module-side L2-hit merge removes the entry unless
//!   `ready > completion`, and `completion >= now + l2_latency > now`;
//! * the memory-side remote merge removes the entry unless
//!   `ready > t0`, and `t0 >= now` (LSU queues never travel back in
//!   time).
//!
//! So expiring at `now` only removes entries no future lookup could
//! have used, and per-line `get`/`remove`/`insert` semantics are
//! unchanged.
//!
//! # Slot lifecycle
//!
//! A slot is *live* while the index maps its line to it, *dead* after
//! `remove`/replacement, and *free* once its (single) wheel entry pops.
//! Slots return to the free list **only** through the wheel pop — a
//! replacement marks the old slot dead and allocates a fresh one — so a
//! heap entry can never alias a reused slot and no generation counters
//! are needed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sentinel for an empty index bucket.
const EMPTY: u32 = u32::MAX;
/// Sentinel for a deleted index bucket (tombstone; probes continue past).
const TOMBSTONE: u32 = u32::MAX - 1;

/// Slab + index + wheel tracking in-flight fills: line → ready cycle.
#[derive(Debug, Clone, Default)]
pub struct InflightTable {
    /// Cacheline address column, parallel to `ready`/`live`.
    line: Vec<u64>,
    /// Ready-cycle column.
    ready: Vec<u64>,
    /// Liveness column: `false` once removed/replaced, slot awaiting its
    /// wheel pop.
    live: Vec<bool>,
    /// Slot ids available for reuse.
    free: Vec<u32>,
    /// Open-addressing index: bucket → slot id (or `EMPTY`/`TOMBSTONE`).
    /// Length is always a power of two (or zero before first insert).
    buckets: Vec<u32>,
    /// Live entries in the index.
    len: usize,
    /// Occupied buckets (live + tombstones), for resize pressure.
    used_buckets: usize,
    /// Min-heap over (ready, slot id): the sorted wheel.
    wheel: BinaryHeap<Reverse<(u64, u32)>>,
}

/// FNV-1a over the 8 little-endian bytes of a line address. Line
/// addresses are 128-byte aligned, so the low 7 bits carry no entropy;
/// FNV mixes every input byte into every output bit, which is enough
/// for a power-of-two table.
#[inline]
fn hash_line(line: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in line.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

impl InflightTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no fills are tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocated slots (live + dead awaiting their wheel pop); the
    /// arena's high-water occupancy is `line.len()`.
    pub fn occupancy(&self) -> usize {
        self.line.len() - self.free.len()
    }

    /// Ready cycle of the in-flight fill for `line`, if any.
    #[inline]
    pub fn get(&self, line: u64) -> Option<u64> {
        let slot = self.find(line)?;
        Some(self.ready[slot as usize])
    }

    /// Stops tracking `line` (no-op when absent). The slot is reclaimed
    /// later by the wheel.
    pub fn remove(&mut self, line: u64) {
        if self.buckets.is_empty() {
            return;
        }
        let mask = self.buckets.len() - 1;
        let mut b = hash_line(line) as usize & mask;
        loop {
            match self.buckets[b] {
                EMPTY => return,
                TOMBSTONE => {}
                slot if self.line[slot as usize] == line => {
                    self.buckets[b] = TOMBSTONE;
                    self.live[slot as usize] = false;
                    self.len -= 1;
                    return;
                }
                _ => {}
            }
            b = (b + 1) & mask;
        }
    }

    /// Tracks an in-flight fill of `line` landing at `ready`,
    /// replacing any existing entry for the line.
    pub fn insert(&mut self, line: u64, ready: u64) {
        // Replace = remove old + insert fresh slot; the dead slot keeps
        // its wheel entry and is reclaimed when that pops.
        self.remove(line);
        let slot = match self.free.pop() {
            Some(s) => {
                let i = s as usize;
                self.line[i] = line;
                self.ready[i] = ready;
                self.live[i] = true;
                s
            }
            None => {
                let s = self.line.len() as u32;
                self.line.push(line);
                self.ready.push(ready);
                self.live.push(true);
                s
            }
        };
        self.wheel.push(Reverse((ready, slot)));
        self.index_insert(line, slot);
    }

    /// Retires every entry whose fill has landed (`ready <= now`),
    /// reclaiming dead slots along the way. Returns how many *live*
    /// entries were retired.
    pub fn expire(&mut self, now: u64) -> usize {
        let mut retired = 0;
        while let Some(&Reverse((ready, slot))) = self.wheel.peek() {
            if ready > now {
                break;
            }
            self.wheel.pop();
            if self.live[slot as usize] {
                self.remove(self.line[slot as usize]);
                retired += 1;
            }
            self.free.push(slot);
        }
        retired
    }

    /// Drops every entry (kernel boundary). Capacity is retained.
    pub fn clear(&mut self) {
        self.line.clear();
        self.ready.clear();
        self.live.clear();
        self.free.clear();
        self.wheel.clear();
        self.buckets.fill(EMPTY);
        self.len = 0;
        self.used_buckets = 0;
    }

    /// Index lookup: slot id for `line`.
    #[inline]
    fn find(&self, line: u64) -> Option<u32> {
        if self.buckets.is_empty() {
            return None;
        }
        let mask = self.buckets.len() - 1;
        let mut b = hash_line(line) as usize & mask;
        loop {
            match self.buckets[b] {
                EMPTY => return None,
                TOMBSTONE => {}
                slot if self.line[slot as usize] == line => return Some(slot),
                _ => {}
            }
            b = (b + 1) & mask;
        }
    }

    /// Inserts `line → slot` into the index; `line` must be absent.
    fn index_insert(&mut self, line: u64, slot: u32) {
        if self.used_buckets * 2 >= self.buckets.len() {
            self.grow_index();
        }
        let mask = self.buckets.len() - 1;
        let mut b = hash_line(line) as usize & mask;
        loop {
            match self.buckets[b] {
                EMPTY => {
                    self.buckets[b] = slot;
                    self.len += 1;
                    self.used_buckets += 1;
                    return;
                }
                TOMBSTONE => {
                    self.buckets[b] = slot;
                    self.len += 1;
                    // Reusing a tombstone leaves `used_buckets` as-is.
                    return;
                }
                _ => b = (b + 1) & mask,
            }
        }
    }

    /// Doubles the bucket array (min 16) and rehashes the indexed
    /// slots, clearing tombstone pressure. Rebuilds from the old bucket
    /// array (not the slab columns) so a slot mid-insert — already in
    /// the columns but not yet indexed — is not double-indexed.
    fn grow_index(&mut self) {
        let new_cap = (self.buckets.len() * 2).max(16);
        let old = std::mem::replace(&mut self.buckets, vec![EMPTY; new_cap]);
        self.used_buckets = 0;
        let mask = new_cap - 1;
        for slot in old {
            if slot == EMPTY || slot == TOMBSTONE {
                continue;
            }
            let mut b = hash_line(self.line[slot as usize]) as usize & mask;
            while self.buckets[b] != EMPTY {
                b = (b + 1) & mask;
            }
            self.buckets[b] = slot;
            self.used_buckets += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = InflightTable::new();
        assert!(t.is_empty());
        assert_eq!(t.get(0x1000), None);
        t.insert(0x1000, 500);
        t.insert(0x2000, 300);
        assert_eq!(t.get(0x1000), Some(500));
        assert_eq!(t.get(0x2000), Some(300));
        assert_eq!(t.len(), 2);
        t.remove(0x1000);
        assert_eq!(t.get(0x1000), None);
        assert_eq!(t.get(0x2000), Some(300));
        t.remove(0x1000); // double remove is a no-op
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn insert_replaces_existing_line() {
        let mut t = InflightTable::new();
        t.insert(0x40, 100);
        t.insert(0x40, 900);
        assert_eq!(t.get(0x40), Some(900));
        assert_eq!(t.len(), 1);
        // The dead slot's early wheel entry must not evict the
        // replacement when it pops.
        assert_eq!(t.expire(100), 0);
        assert_eq!(t.get(0x40), Some(900));
        assert_eq!(t.expire(900), 1);
        assert_eq!(t.get(0x40), None);
    }

    #[test]
    fn expire_retires_in_ready_order() {
        let mut t = InflightTable::new();
        for (i, ready) in [400u64, 100, 300, 200].iter().enumerate() {
            t.insert(i as u64 * 128, *ready);
        }
        assert_eq!(t.expire(50), 0);
        assert_eq!(t.len(), 4);
        assert_eq!(t.expire(250), 2); // 100 and 200 land
        assert_eq!(t.get(128), None);
        assert_eq!(t.get(3 * 128), None);
        assert_eq!(t.get(0), Some(400));
        assert_eq!(t.expire(1_000), 2);
        assert!(t.is_empty());
    }

    #[test]
    fn slots_are_reused_after_expiry() {
        let mut t = InflightTable::new();
        for round in 0..10u64 {
            for i in 0..8u64 {
                t.insert(i * 128, round * 100 + 50);
            }
            assert_eq!(t.expire(round * 100 + 50), 8);
            assert!(t.is_empty());
        }
        // 8 live at a time; replacements double the transient footprint
        // at worst, but expiry reclaims everything.
        assert!(t.occupancy() == 0, "occupancy {}", t.occupancy());
        assert!(t.line.len() <= 16, "slab grew to {}", t.line.len());
    }

    #[test]
    fn clear_resets_everything() {
        let mut t = InflightTable::new();
        for i in 0..100u64 {
            t.insert(i * 128, i + 1_000);
        }
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.occupancy(), 0);
        for i in 0..100u64 {
            assert_eq!(t.get(i * 128), None);
        }
        t.insert(0, 5);
        assert_eq!(t.get(0), Some(5));
    }

    #[test]
    fn matches_hashmap_reference_under_mixed_ops() {
        use std::collections::HashMap;
        // Deterministic splitmix-style generator (no rand dependency).
        let mut s: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut t = InflightTable::new();
        let mut reference: HashMap<u64, u64> = HashMap::new();
        let mut now = 0u64;
        for _ in 0..20_000 {
            let line = (next() % 512) * 128;
            match next() % 10 {
                0..=5 => {
                    let ready = now + 1 + next() % 400;
                    t.insert(line, ready);
                    reference.insert(line, ready);
                }
                6..=7 => {
                    assert_eq!(t.get(line), reference.get(&line).copied());
                    t.remove(line);
                    reference.remove(&line);
                }
                8 => {
                    now += next() % 100;
                    t.expire(now);
                    reference.retain(|_, &mut r| r > now);
                }
                _ => {
                    assert_eq!(t.get(line), reference.get(&line).copied());
                    assert_eq!(t.len(), reference.len());
                }
            }
        }
        for (&line, &ready) in &reference {
            assert_eq!(t.get(line), Some(ready));
        }
        assert_eq!(t.len(), reference.len());
    }
}
