//! Set-associative cache model with LRU replacement and dirty tracking.
//!
//! Used for both the per-SM L1s (write-through, invalidated at kernel
//! boundaries — the paper's software coherence) and the per-GPM
//! module-side L2s (write-back, remote lines flushed at kernel
//! boundaries).
//!
//! Line metadata is stored as two parallel `u64` columns (tag word,
//! LRU stamp) rather than an array of structs. A tag word of `0` means
//! "invalid", with the valid and dirty flags packed into the low bits
//! of the line-aligned address — so a fresh cache is `vec![0; n]`
//! twice, which the allocator serves from lazily-zeroed pages.
//! Constructing the hundreds of caches in a multi-module GPU therefore
//! costs no memset and no page faults for sets that are never touched.

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAccess {
    /// The line was present.
    Hit,
    /// The line was not present; it has been allocated. If the victim was
    /// dirty, its line address is returned for write-back.
    Miss {
        /// Dirty victim line that must be written back, if any.
        writeback: Option<u64>,
    },
}

impl CacheAccess {
    /// `true` for a hit.
    pub fn is_hit(self) -> bool {
        matches!(self, CacheAccess::Hit)
    }
}

/// Tag-word flag: the way holds a line. Lives in bit 0, inside the
/// line-offset bits of the stored line-aligned address.
const VALID: u64 = 1;
/// Tag-word flag: the held line is dirty.
const DIRTY: u64 = 2;

/// A set-associative, LRU, write-back cache over power-of-two lines.
///
/// # Examples
///
/// ```
/// use sim::cache::{Cache, CacheAccess};
///
/// let mut c = Cache::new(32 * 1024, 4, 128);
/// assert!(!c.access(0x0, false).is_hit());
/// assert!(c.access(0x0, false).is_hit());
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    /// `line_addr | VALID | (DIRTY)` per way; `0` = invalid way.
    tags: Vec<u64>,
    /// Last-touch tick per way.
    lru: Vec<u64>,
    num_sets: usize,
    assoc: usize,
    line_bytes: u64,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache of `capacity_bytes` with `assoc` ways and
    /// `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, capacity not a
    /// multiple of `assoc × line_bytes`, or `line_bytes` not a power of
    /// two of at least 4 — the flag bits live in the line offset).
    pub fn new(capacity_bytes: u64, assoc: usize, line_bytes: u64) -> Self {
        assert!(
            line_bytes > 0 && assoc > 0 && capacity_bytes > 0,
            "degenerate cache geometry"
        );
        assert!(
            line_bytes.is_power_of_two() && line_bytes >= 4,
            "line size must be a power of two of at least 4 bytes"
        );
        let lines = capacity_bytes / line_bytes;
        assert!(
            lines.is_multiple_of(assoc as u64) && lines >= assoc as u64,
            "capacity must be a whole number of sets"
        );
        let num_sets = (lines / assoc as u64) as usize;
        let ways = num_sets * assoc;
        Cache {
            tags: vec![0; ways],
            lru: vec![0; ways],
            num_sets,
            assoc,
            line_bytes,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    #[inline]
    fn set_of(&self, line_addr: u64) -> usize {
        // Simple modulo indexing over line number; line_addr is already a
        // line-aligned byte address.
        ((line_addr / self.line_bytes) % self.num_sets as u64) as usize
    }

    /// The stored line-aligned address of a tag word.
    #[inline]
    fn addr_of(tag: u64) -> u64 {
        tag & !(VALID | DIRTY)
    }

    /// Accesses the line containing byte address `addr`, allocating on
    /// miss. `is_store` marks the line dirty.
    pub fn access(&mut self, addr: u64, is_store: bool) -> CacheAccess {
        let line_addr = addr & !(self.line_bytes - 1);
        let set = self.set_of(line_addr);
        let base = set * self.assoc;
        self.tick += 1;
        let want = line_addr | VALID;

        // Probe for hit (the dirty bit is the only tag bit that may
        // differ for a match).
        for i in 0..self.assoc {
            let t = self.tags[base + i];
            if t & !DIRTY == want {
                self.lru[base + i] = self.tick;
                if is_store {
                    self.tags[base + i] = t | DIRTY;
                }
                self.hits += 1;
                return CacheAccess::Hit;
            }
        }

        // Miss: pick LRU victim (preferring invalid ways).
        self.misses += 1;
        let mut victim = 0;
        let mut best = u64::MAX;
        for i in 0..self.assoc {
            let t = self.tags[base + i];
            if t == 0 {
                victim = i;
                break;
            }
            if self.lru[base + i] < best {
                best = self.lru[base + i];
                victim = i;
            }
        }

        let old = self.tags[base + victim];
        let writeback = if old & DIRTY != 0 {
            Some(Self::addr_of(old))
        } else {
            None
        };
        self.tags[base + victim] = want | if is_store { DIRTY } else { 0 };
        self.lru[base + victim] = self.tick;
        CacheAccess::Miss { writeback }
    }

    /// `true` if the line containing `addr` is present (no LRU update).
    pub fn probe(&self, addr: u64) -> bool {
        let line_addr = addr & !(self.line_bytes - 1);
        let set = self.set_of(line_addr);
        let base = set * self.assoc;
        let want = line_addr | VALID;
        self.tags[base..base + self.assoc]
            .iter()
            .any(|&t| t & !DIRTY == want)
    }

    /// Invalidates everything, returning dirty line addresses that need
    /// write-back.
    pub fn flush_all(&mut self) -> Vec<u64> {
        let mut dirty = Vec::new();
        for t in &mut self.tags {
            if *t & DIRTY != 0 {
                dirty.push(Self::addr_of(*t));
            }
            *t = 0;
        }
        dirty
    }

    /// Invalidates lines whose address satisfies `pred`, returning the
    /// dirty ones for write-back. Used for the kernel-boundary flush of
    /// remote-homed lines (software coherence among module-side L2s).
    pub fn flush_matching<F: FnMut(u64) -> bool>(&mut self, mut pred: F) -> Vec<u64> {
        let mut dirty = Vec::new();
        for t in &mut self.tags {
            if *t & VALID != 0 && pred(Self::addr_of(*t)) {
                if *t & DIRTY != 0 {
                    dirty.push(Self::addr_of(*t));
                }
                *t = 0;
            }
        }
        dirty
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit rate since construction; zero with no accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 128 B = 1 KiB.
        Cache::new(1024, 2, 128)
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0x100, false).is_hit());
        assert!(c.access(0x100, false).is_hit());
        assert!(
            c.access(0x17F, false).is_hit(),
            "same line, different offset"
        );
        assert!(!c.access(0x180, false).is_hit(), "next line");
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Three lines mapping to the same set (stride = sets*line = 512).
        c.access(0x000, false);
        c.access(0x200, false);
        // Touch 0x000 so 0x200 is LRU.
        c.access(0x000, false);
        c.access(0x400, false); // evicts 0x200
        assert!(c.access(0x000, false).is_hit());
        assert!(!c.probe(0x200));
        assert!(c.probe(0x400));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0x000, true);
        c.access(0x200, false);
        let res = c.access(0x400, false); // evicts dirty 0x000
        match res {
            CacheAccess::Miss {
                writeback: Some(addr),
            } => assert_eq!(addr, 0x000),
            other => panic!("expected dirty writeback, got {other:?}"),
        }
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x200, false);
        let res = c.access(0x400, false);
        assert_eq!(res, CacheAccess::Miss { writeback: None });
    }

    #[test]
    fn store_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x000, true); // dirty via store hit
        c.access(0x200, false);
        match c.access(0x400, false) {
            CacheAccess::Miss { writeback } => assert_eq!(writeback, Some(0x000)),
            _ => panic!("expected miss"),
        }
    }

    #[test]
    fn flush_all_returns_dirty_lines() {
        let mut c = tiny();
        c.access(0x000, true);
        c.access(0x080, false);
        c.access(0x100, true);
        let mut dirty = c.flush_all();
        dirty.sort_unstable();
        assert_eq!(dirty, vec![0x000, 0x100]);
        assert!(!c.probe(0x080));
    }

    #[test]
    fn flush_matching_is_selective() {
        let mut c = tiny();
        c.access(0x000, true);
        c.access(0x080, true);
        let dirty = c.flush_matching(|addr| addr >= 0x080);
        assert_eq!(dirty, vec![0x080]);
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
    }

    #[test]
    fn stats_and_hit_rate() {
        let mut c = tiny();
        assert_eq!(c.hit_rate(), 0.0);
        c.access(0x0, false);
        c.access(0x0, false);
        c.access(0x0, false);
        let (h, m) = c.stats();
        assert_eq!((h, m), (2, 1));
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_behaves_like_working_set_bound() {
        // A working set that fits is all hits on the second pass.
        let mut c = Cache::new(32 * 1024, 4, 128);
        for addr in (0..32 * 1024).step_by(128) {
            c.access(addr, false);
        }
        let (_, misses_first) = c.stats();
        for addr in (0..32 * 1024).step_by(128) {
            assert!(c.access(addr, false).is_hit());
        }
        assert_eq!(misses_first, 256);
    }

    #[test]
    fn address_zero_line_is_cacheable() {
        // Line address 0 must be distinguishable from an invalid way —
        // the VALID flag, not the address, encodes occupancy.
        let mut c = tiny();
        assert!(!c.access(0x000, false).is_hit());
        assert!(c.access(0x000, false).is_hit());
        assert!(c.probe(0x000));
        // Dirty line 0 writes back as address 0.
        c.access(0x000, true);
        c.access(0x200, false);
        match c.access(0x400, false) {
            CacheAccess::Miss { writeback } => assert_eq!(writeback, Some(0x000)),
            _ => panic!("expected miss"),
        }
        assert_eq!(c.flush_all(), Vec::<u64>::new());
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_capacity_panics() {
        let _ = Cache::new(0, 2, 128);
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn non_integral_sets_panic() {
        let _ = Cache::new(128 * 3, 2, 128);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_line_panics() {
        let _ = Cache::new(1024, 2, 96);
    }
}
