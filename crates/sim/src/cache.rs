//! Set-associative cache model with LRU replacement and dirty tracking.
//!
//! Used for both the per-SM L1s (write-through, invalidated at kernel
//! boundaries — the paper's software coherence) and the per-GPM
//! module-side L2s (write-back, remote lines flushed at kernel
//! boundaries).

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAccess {
    /// The line was present.
    Hit,
    /// The line was not present; it has been allocated. If the victim was
    /// dirty, its line address is returned for write-back.
    Miss {
        /// Dirty victim line that must be written back, if any.
        writeback: Option<u64>,
    },
}

impl CacheAccess {
    /// `true` for a hit.
    pub fn is_hit(self) -> bool {
        matches!(self, CacheAccess::Hit)
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

const INVALID: Line = Line {
    tag: 0,
    valid: false,
    dirty: false,
    lru: 0,
};

/// A set-associative, LRU, write-back cache over 128-byte lines.
///
/// # Examples
///
/// ```
/// use sim::cache::{Cache, CacheAccess};
///
/// let mut c = Cache::new(32 * 1024, 4, 128);
/// assert!(!c.access(0x0, false).is_hit());
/// assert!(c.access(0x0, false).is_hit());
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Line>,
    num_sets: usize,
    assoc: usize,
    line_bytes: u64,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache of `capacity_bytes` with `assoc` ways and
    /// `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, capacity not a
    /// multiple of `assoc × line_bytes`).
    pub fn new(capacity_bytes: u64, assoc: usize, line_bytes: u64) -> Self {
        assert!(
            line_bytes > 0 && assoc > 0 && capacity_bytes > 0,
            "degenerate cache geometry"
        );
        let lines = capacity_bytes / line_bytes;
        assert!(
            lines.is_multiple_of(assoc as u64) && lines >= assoc as u64,
            "capacity must be a whole number of sets"
        );
        let num_sets = (lines / assoc as u64) as usize;
        Cache {
            sets: vec![INVALID; num_sets * assoc],
            num_sets,
            assoc,
            line_bytes,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    #[inline]
    fn set_of(&self, line_addr: u64) -> usize {
        // Simple modulo indexing over line number; line_addr is already a
        // line-aligned byte address.
        ((line_addr / self.line_bytes) % self.num_sets as u64) as usize
    }

    /// Accesses the line containing byte address `addr`, allocating on
    /// miss. `is_store` marks the line dirty.
    pub fn access(&mut self, addr: u64, is_store: bool) -> CacheAccess {
        let line_addr = addr & !(self.line_bytes - 1);
        let set = self.set_of(line_addr);
        let base = set * self.assoc;
        self.tick += 1;

        // Probe for hit.
        for i in 0..self.assoc {
            let line = &mut self.sets[base + i];
            if line.valid && line.tag == line_addr {
                line.lru = self.tick;
                line.dirty |= is_store;
                self.hits += 1;
                return CacheAccess::Hit;
            }
        }

        // Miss: pick LRU victim (preferring invalid ways).
        self.misses += 1;
        let mut victim = 0;
        let mut best = u64::MAX;
        for i in 0..self.assoc {
            let line = &self.sets[base + i];
            if !line.valid {
                victim = i;
                break;
            }
            if line.lru < best {
                best = line.lru;
                victim = i;
            }
        }

        let line = &mut self.sets[base + victim];
        // Tags store the full line-aligned address, so the write-back
        // address is the tag itself.
        let writeback = if line.valid && line.dirty {
            Some(line.tag)
        } else {
            None
        };
        *line = Line {
            tag: line_addr,
            valid: true,
            dirty: is_store,
            lru: self.tick,
        };
        CacheAccess::Miss { writeback }
    }

    /// `true` if the line containing `addr` is present (no LRU update).
    pub fn probe(&self, addr: u64) -> bool {
        let line_addr = addr & !(self.line_bytes - 1);
        let set = self.set_of(line_addr);
        let base = set * self.assoc;
        (0..self.assoc).any(|i| {
            let line = &self.sets[base + i];
            line.valid && line.tag == line_addr
        })
    }

    /// Invalidates everything, returning dirty line addresses that need
    /// write-back.
    pub fn flush_all(&mut self) -> Vec<u64> {
        let mut dirty = Vec::new();
        for line in &mut self.sets {
            if line.valid && line.dirty {
                dirty.push(line.tag);
            }
            *line = INVALID;
        }
        dirty
    }

    /// Invalidates lines whose address satisfies `pred`, returning the
    /// dirty ones for write-back. Used for the kernel-boundary flush of
    /// remote-homed lines (software coherence among module-side L2s).
    pub fn flush_matching<F: FnMut(u64) -> bool>(&mut self, mut pred: F) -> Vec<u64> {
        let mut dirty = Vec::new();
        for line in &mut self.sets {
            if line.valid && pred(line.tag) {
                if line.dirty {
                    dirty.push(line.tag);
                }
                *line = INVALID;
            }
        }
        dirty
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit rate since construction; zero with no accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 128 B = 1 KiB.
        Cache::new(1024, 2, 128)
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0x100, false).is_hit());
        assert!(c.access(0x100, false).is_hit());
        assert!(
            c.access(0x17F, false).is_hit(),
            "same line, different offset"
        );
        assert!(!c.access(0x180, false).is_hit(), "next line");
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Three lines mapping to the same set (stride = sets*line = 512).
        c.access(0x000, false);
        c.access(0x200, false);
        // Touch 0x000 so 0x200 is LRU.
        c.access(0x000, false);
        c.access(0x400, false); // evicts 0x200
        assert!(c.access(0x000, false).is_hit());
        assert!(!c.probe(0x200));
        assert!(c.probe(0x400));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0x000, true);
        c.access(0x200, false);
        let res = c.access(0x400, false); // evicts dirty 0x000
        match res {
            CacheAccess::Miss {
                writeback: Some(addr),
            } => assert_eq!(addr, 0x000),
            other => panic!("expected dirty writeback, got {other:?}"),
        }
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x200, false);
        let res = c.access(0x400, false);
        assert_eq!(res, CacheAccess::Miss { writeback: None });
    }

    #[test]
    fn store_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x000, true); // dirty via store hit
        c.access(0x200, false);
        match c.access(0x400, false) {
            CacheAccess::Miss { writeback } => assert_eq!(writeback, Some(0x000)),
            _ => panic!("expected miss"),
        }
    }

    #[test]
    fn flush_all_returns_dirty_lines() {
        let mut c = tiny();
        c.access(0x000, true);
        c.access(0x080, false);
        c.access(0x100, true);
        let mut dirty = c.flush_all();
        dirty.sort_unstable();
        assert_eq!(dirty, vec![0x000, 0x100]);
        assert!(!c.probe(0x080));
    }

    #[test]
    fn flush_matching_is_selective() {
        let mut c = tiny();
        c.access(0x000, true);
        c.access(0x080, true);
        let dirty = c.flush_matching(|addr| addr >= 0x080);
        assert_eq!(dirty, vec![0x080]);
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
    }

    #[test]
    fn stats_and_hit_rate() {
        let mut c = tiny();
        assert_eq!(c.hit_rate(), 0.0);
        c.access(0x0, false);
        c.access(0x0, false);
        c.access(0x0, false);
        let (h, m) = c.stats();
        assert_eq!((h, m), (2, 1));
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_behaves_like_working_set_bound() {
        // A working set that fits is all hits on the second pass.
        let mut c = Cache::new(32 * 1024, 4, 128);
        for addr in (0..32 * 1024).step_by(128) {
            c.access(addr, false);
        }
        let (_, misses_first) = c.stats();
        for addr in (0..32 * 1024).step_by(128) {
            assert!(c.access(addr, false).is_hit());
        }
        assert_eq!(misses_first, 256);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_capacity_panics() {
        let _ = Cache::new(0, 2, 128);
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn non_integral_sets_panic() {
        let _ = Cache::new(128 * 3, 2, 128);
    }
}
