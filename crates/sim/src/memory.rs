//! The multi-GPM memory system.
//!
//! Request path for a global access from an SM (§V-A1's organization):
//!
//! ```text
//! SM LSU → per-SM L1 (write-through, software-coherent)
//!        → local module-side L2 (write-back, caches local + remote lines)
//!        → home DRAM (local stack, or across the NoC for remote pages)
//! ```
//!
//! Pages are placed first-touch; the module-side L2 caches remote data but
//! must flush remote-homed lines at kernel boundaries (software
//! coherence), which is the multi-module coherence model the paper adopts
//! from MCM-GPU.

use crate::bw::BwResource;
use crate::cache::{Cache, CacheAccess};
use crate::config::{GpuConfig, L2Mode};
use crate::inflight::InflightTable;
use crate::noc::Noc;
use crate::pages::PageTable;
use common::{GpmId, SmId};
use isa::{MemRef, MemSpace, Transaction, TxnCounts};

/// Bytes of a request message crossing the NoC (header + address).
const REQ_BYTES: u64 = 32;
/// Bytes of a data-carrying NoC message (128 B line + header).
const DATA_BYTES: u64 = 160;
/// Sectors per 128 B line at the L2/DRAM interfaces.
const SECTORS_PER_LINE: u64 = 4;

/// Store-buffer depth in cycles of L2 backlog: a store retires immediately
/// while the queue is shallow, but blocks its warp once the memory system
/// is this far behind (write-buffer backpressure; without it, stores could
/// run arbitrarily far ahead of the machine).
const STORE_BUFFER_SLACK: u64 = 256;

/// Result of issuing one memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOutcome {
    /// Cycle at which the data is available (loads) or the request is
    /// accepted (stores).
    pub completion: u64,
    /// Whether the issuing warp must block until `completion` (loads do,
    /// stores retire through the write buffer).
    pub blocking: bool,
}

/// Average utilization of each bandwidth-limited resource class over a
/// run (diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UtilizationReport {
    /// Mean DRAM-channel utilization across modules, 0–1.
    pub dram: f64,
    /// Mean L2-port utilization across modules, 0–1.
    pub l2: f64,
    /// Mean inter-GPM link utilization, 0–1.
    pub link_avg: f64,
    /// Hottest inter-GPM link's utilization, 0–1.
    pub link_max: f64,
    /// Aggregate L1 hit rate.
    pub l1_hit_rate: f64,
    /// Aggregate L2 hit rate.
    pub l2_hit_rate: f64,
}

impl std::fmt::Display for UtilizationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dram {:.0}%, L2 {:.0}%, links avg {:.0}% / max {:.0}%, hit L1 {:.2} L2 {:.2}",
            self.dram * 100.0,
            self.l2 * 100.0,
            self.link_avg * 100.0,
            self.link_max * 100.0,
            self.l1_hit_rate,
            self.l2_hit_rate
        )
    }
}

/// Per-GPM memory-side state.
#[derive(Debug, Clone)]
struct GpmMem {
    l2: Cache,
    l2_bw: BwResource,
    dram: BwResource,
    /// Lines with an in-flight fill, for miss merging: line → ready cycle.
    pending: InflightTable,
}

/// The handful of configuration scalars the memory system reads after
/// construction, copied out of [`GpuConfig`] so every [`MemorySystem`]
/// (and every shadow-mode clone of one) carries a few words instead of
/// a heap-allocated config clone.
#[derive(Debug, Clone, Copy)]
struct MemParams {
    /// SMs per GPM (flat SM indexing).
    sms_per_gpm: usize,
    /// Number of GPMs.
    num_gpms: usize,
    /// Module-side vs memory-side L2 placement.
    l2_mode: L2Mode,
    /// Shared-memory (scratchpad) access latency.
    shared_latency: u64,
    /// L1 hit latency.
    l1_latency: u64,
    /// L2 access latency.
    l2_latency: u64,
    /// DRAM access latency.
    dram_latency: u64,
    /// Per-link inter-GPM capacity in bytes/cycle (∞ for ideal NoCs).
    link_capacity_bytes: f64,
}

impl MemParams {
    fn new(cfg: &GpuConfig) -> Self {
        let per_gpm = cfg.inter_gpm_bw.bytes_per_cycle(cfg.gpm.clock);
        let link_capacity_bytes = match cfg.topology {
            crate::config::Topology::Ring => per_gpm / 2.0,
            crate::config::Topology::Switch => per_gpm,
            crate::config::Topology::Ideal => f64::INFINITY,
        };
        MemParams {
            sms_per_gpm: cfg.gpm.sms,
            num_gpms: cfg.num_gpms,
            l2_mode: cfg.l2_mode,
            shared_latency: cfg.gpm.shared_latency,
            l1_latency: cfg.gpm.l1_latency,
            l2_latency: cfg.gpm.l2_latency,
            dram_latency: cfg.gpm.dram_latency,
            link_capacity_bytes,
        }
    }
}

/// The full memory system of a simulated multi-module GPU.
///
/// `Clone` is derived so [`crate::EngineMode::Shadow`] can run the naive
/// reference loop on an identical copy of the machine state.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    params: MemParams,
    l1: Vec<Cache>,
    lsu: Vec<BwResource>,
    gpms: Vec<GpmMem>,
    noc: Noc,
    pages: PageTable,
    txns: TxnCounts,
    lat: LatencyStats,
    /// High-water arena occupancy already emitted to the
    /// `sim.soa.txn_inflight_peak` counter.
    inflight_peak: u64,
}

/// Aggregate load-latency statistics (diagnostics).
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyStats {
    /// Completed blocking loads.
    pub loads: u64,
    /// Sum of load latencies in cycles.
    pub total_cycles: u64,
    /// Largest single load latency.
    pub max_cycles: u64,
    /// Loads serviced by a remote module.
    pub remote_loads: u64,
    /// Sum of remote-load latencies.
    pub remote_cycles: u64,
}

impl LatencyStats {
    /// Mean load latency in cycles (0 if no loads).
    pub fn mean(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.loads as f64
        }
    }

    /// Mean remote-load latency in cycles (0 if none).
    pub fn mean_remote(&self) -> f64 {
        if self.remote_loads == 0 {
            0.0
        } else {
            self.remote_cycles as f64 / self.remote_loads as f64
        }
    }
}

impl MemorySystem {
    /// Builds the memory system for a configuration.
    pub fn new(cfg: &GpuConfig) -> Self {
        let total_sms = cfg.total_sms();
        let clock = cfg.gpm.clock;
        let l1 = (0..total_sms)
            .map(|_| Cache::new(cfg.gpm.l1_bytes.count(), cfg.gpm.l1_assoc, 128))
            .collect();
        let lsu = (0..total_sms).map(|_| BwResource::new(128.0)).collect();
        let gpms = (0..cfg.num_gpms)
            .map(|_| GpmMem {
                l2: Cache::new(cfg.gpm.l2_bytes.count(), cfg.gpm.l2_assoc, 128),
                l2_bw: BwResource::new(cfg.gpm.l2_bw.bytes_per_cycle(clock)),
                dram: BwResource::new(cfg.gpm.dram_bw.bytes_per_cycle(clock)),
                pending: InflightTable::new(),
            })
            .collect();
        MemorySystem {
            noc: Noc::new(cfg),
            pages: PageTable::with_policy(cfg.page_bytes.count(), cfg.page_policy, cfg.num_gpms),
            l1,
            lsu,
            gpms,
            params: MemParams::new(cfg),
            txns: TxnCounts::new(),
            lat: LatencyStats::default(),
            inflight_peak: 0,
        }
    }

    /// Aggregate load-latency statistics.
    pub fn latency_stats(&self) -> LatencyStats {
        self.lat
    }

    /// The page table (diagnostics).
    pub fn pages(&self) -> &PageTable {
        &self.pages
    }

    /// The interconnect (diagnostics).
    pub fn noc(&self) -> &Noc {
        &self.noc
    }

    /// Transaction counts accumulated so far (inter-GPM classes are
    /// derived from NoC byte counters when results are finalized).
    pub fn txns(&self) -> &TxnCounts {
        &self.txns
    }

    /// Total bytes × hops over inter-GPM links so far.
    pub fn inter_gpm_hop_bytes(&self) -> u64 {
        self.noc.hop_bytes()
    }

    /// Total end-to-end bytes between modules so far.
    pub fn inter_gpm_bytes(&self) -> u64 {
        self.noc.transfer_bytes()
    }

    /// Total bytes through the switch so far.
    pub fn switch_bytes(&self) -> u64 {
        self.noc.switch_bytes()
    }

    /// Places the page containing `addr` on `gpm` if not yet placed
    /// (used by the pre-fault pass that models in-order initialization).
    pub fn prefault_page(&mut self, addr: u64, gpm: GpmId) {
        self.pages.home_of(addr & !127, gpm);
    }

    /// Issues one memory reference from `sm` at cycle `now`.
    pub fn access(&mut self, sm: SmId, mref: MemRef, now: u64) -> MemOutcome {
        match mref.space {
            MemSpace::Shared => self.access_shared(sm, mref, now),
            MemSpace::Global => self.access_global(sm, mref, now),
        }
    }

    fn access_shared(&mut self, sm: SmId, mref: MemRef, now: u64) -> MemOutcome {
        let flat = sm.flat_index(self.params.sms_per_gpm);
        let t0 = self.lsu[flat].acquire(128, now);
        self.txns.add(Transaction::SharedToReg, 1);
        MemOutcome {
            completion: t0 + self.params.shared_latency,
            blocking: !mref.is_store,
        }
    }

    fn access_global(&mut self, sm: SmId, mref: MemRef, now: u64) -> MemOutcome {
        let flat = sm.flat_index(self.params.sms_per_gpm);
        let gpm = sm.gpm;
        let line = mref.addr & !127;
        let t0 = self.lsu[flat].acquire(128, now);
        // Retire fills that have landed; the wheel makes this O(1) when
        // nothing is due (see `inflight` module docs for why dropping
        // entries with `ready <= now` is behavior-identical).
        let expired = self.gpms[gpm.index()].pending.expire(now);
        if expired > 0 {
            trace::count("sim.soa.txn_inflight_expired", expired as u64);
        }

        if mref.is_store {
            // Write-through past the L1 (updating it if present), into an
            // L2 with allocate-no-fetch. Module-side: the local L2;
            // memory-side: the page's home L2, across the NoC if remote.
            self.txns.add(Transaction::L2ToL1, SECTORS_PER_LINE);
            let home = self.pages.home_of(line, gpm);
            let target = match self.params.l2_mode {
                L2Mode::ModuleSide => gpm,
                L2Mode::MemorySide => home,
            };
            if target != gpm {
                self.noc.transfer(gpm, target, DATA_BYTES, t0);
            }
            let t1 = self.gpms[target.index()].l2_bw.acquire(128, t0);
            match self.gpms[target.index()].l2.access(line, true) {
                CacheAccess::Hit => {}
                CacheAccess::Miss { writeback } => {
                    if let Some(victim) = writeback {
                        self.write_back(target, victim, t1);
                    }
                }
            }
            // Backpressure: block the warp until the store is accepted
            // into the (bounded) write buffer.
            let accepted = (t0 + 1).max(t1.saturating_sub(STORE_BUFFER_SLACK));
            return MemOutcome {
                completion: accepted,
                blocking: accepted > t0 + 1,
            };
        }

        // Load: probe the L1.
        if self.l1[flat].access(line, false).is_hit() {
            self.txns.add(Transaction::L1ToReg, 1);
            return MemOutcome {
                completion: t0 + self.params.l1_latency,
                blocking: true,
            };
        }

        // L1 miss: the fill moves a line from L2 to L1 and on to the RF.
        self.txns.add(Transaction::L1ToReg, 1);
        self.txns.add(Transaction::L2ToL1, SECTORS_PER_LINE);

        // Under the memory-side ablation, remote lines are never cached
        // locally: every L1 miss on a remote page probes the home L2
        // across the NoC.
        if self.params.l2_mode == L2Mode::MemorySide {
            let home = self.pages.home_of(line, gpm);
            if home != gpm {
                return self.remote_memory_side_load(gpm, home, line, t0);
            }
        }

        let t1 = self.gpms[gpm.index()].l2_bw.acquire(128, t0);
        let l2_lat = self.params.l2_latency;
        match self.gpms[gpm.index()].l2.access(line, false) {
            CacheAccess::Hit => {
                // The line may still be in flight from an earlier miss.
                let mut completion = t1 + l2_lat;
                let mem = &mut self.gpms[gpm.index()];
                if let Some(ready) = mem.pending.get(line) {
                    if ready > completion {
                        completion = ready;
                    } else {
                        mem.pending.remove(line);
                    }
                }
                MemOutcome {
                    completion,
                    blocking: true,
                }
            }
            CacheAccess::Miss { writeback } => {
                if let Some(victim) = writeback {
                    self.write_back(gpm, victim, t0);
                }
                let home = self.pages.home_of(line, gpm);
                self.txns.add(Transaction::DramToL2, SECTORS_PER_LINE);
                // Pipelined accounting: every resource on the path
                // reserves bandwidth at issue time; the reply arrives when
                // the slowest queue drains plus the path's fixed latency.
                let completion = if home == gpm {
                    let dram_t = self.gpms[gpm.index()].dram.acquire(128, t0);
                    t1.max(dram_t) + self.params.dram_latency + l2_lat
                } else {
                    let (req_q, req_lat) = self.noc.transfer_queued(gpm, home, REQ_BYTES, t0);
                    let dram_q = self.gpms[home.index()].dram.acquire(128, t0);
                    let (resp_q, resp_lat) = self.noc.transfer_queued(home, gpm, DATA_BYTES, t0);
                    // Queue delays overlap; the physical round trip
                    // (request hops + DRAM access + response hops) is
                    // serial.
                    t1.max(req_q).max(dram_q).max(resp_q)
                        + req_lat
                        + self.params.dram_latency
                        + resp_lat
                        + l2_lat
                };
                self.track_inflight(gpm, line, completion);
                let latency = completion - now;
                self.lat.loads += 1;
                self.lat.total_cycles += latency;
                self.lat.max_cycles = self.lat.max_cycles.max(latency);
                if home != gpm {
                    self.lat.remote_loads += 1;
                    self.lat.remote_cycles += latency;
                }
                MemOutcome {
                    completion,
                    blocking: true,
                }
            }
        }
    }

    /// A load serviced by the *home* module's memory-side L2: request and
    /// response cross the NoC on every access; nothing is cached locally.
    fn remote_memory_side_load(
        &mut self,
        gpm: GpmId,
        home: GpmId,
        line: u64,
        t0: u64,
    ) -> MemOutcome {
        // Merge with an in-flight fetch of the same line from this module.
        if let Some(ready) = self.gpms[gpm.index()].pending.get(line) {
            if ready > t0 {
                return MemOutcome {
                    completion: ready,
                    blocking: true,
                };
            }
            self.gpms[gpm.index()].pending.remove(line);
        }

        let l2_lat = self.params.l2_latency;
        let (req_q, req_lat) = self.noc.transfer_queued(gpm, home, REQ_BYTES, t0);
        let l2_q = self.gpms[home.index()].l2_bw.acquire(128, t0);
        let extra = match self.gpms[home.index()].l2.access(line, false) {
            CacheAccess::Hit => 0,
            CacheAccess::Miss { writeback } => {
                if let Some(victim) = writeback {
                    // Memory-side L2s hold only local lines.
                    self.gpms[home.index()].dram.acquire(128, t0);
                    self.txns.add(Transaction::DramToL2, SECTORS_PER_LINE);
                    let _ = victim;
                }
                self.txns.add(Transaction::DramToL2, SECTORS_PER_LINE);
                self.gpms[home.index()].dram.acquire(128, t0);
                self.params.dram_latency
            }
        };
        let (resp_q, resp_lat) = self.noc.transfer_queued(home, gpm, DATA_BYTES, t0);
        let completion = req_q.max(l2_q).max(resp_q) + req_lat + extra + l2_lat + resp_lat;

        self.track_inflight(gpm, line, completion);
        let latency = completion - t0;
        self.lat.loads += 1;
        self.lat.total_cycles += latency;
        self.lat.max_cycles = self.lat.max_cycles.max(latency);
        self.lat.remote_loads += 1;
        self.lat.remote_cycles += latency;
        MemOutcome {
            completion,
            blocking: true,
        }
    }

    /// Records an in-flight fill and keeps the `sim.soa.*` arena
    /// counters current. The peak counter is emitted as high-water-mark
    /// *increments*, so its trace total equals the overall peak.
    fn track_inflight(&mut self, gpm: GpmId, line: u64, completion: u64) {
        let mem = &mut self.gpms[gpm.index()];
        mem.pending.insert(line, completion);
        trace::count("sim.soa.txn_inflight_inserted", 1);
        let occ = mem.pending.occupancy() as u64;
        if occ > self.inflight_peak {
            trace::count("sim.soa.txn_inflight_peak", occ - self.inflight_peak);
            self.inflight_peak = occ;
        }
    }

    /// Writes a dirty L2 victim back to its home DRAM (possibly remote).
    /// Write-backs are off the requester's critical path; they only
    /// consume bandwidth.
    fn write_back(&mut self, from: GpmId, victim_line: u64, now: u64) {
        // Victim lines were placed when first accessed.
        let home = self.pages.home_of(victim_line, from);
        self.txns.add(Transaction::DramToL2, SECTORS_PER_LINE);
        if home != from {
            self.noc.transfer(from, home, DATA_BYTES, now);
        }
        self.gpms[home.index()].dram.acquire(128, now);
    }

    /// Kernel-boundary software coherence: invalidate all L1s and flush
    /// remote-homed lines from every module-side L2 (writing dirty ones
    /// back across the NoC). Returns the cycle when flush traffic drains.
    pub fn kernel_boundary(&mut self, now: u64) -> u64 {
        for l1 in &mut self.l1 {
            // Write-through L1s hold no dirty data.
            let dirty = l1.flush_all();
            debug_assert!(dirty.is_empty(), "write-through L1 had dirty lines");
        }
        let mut done = now;
        for g in 0..self.params.num_gpms {
            let gpm = GpmId::new(g as u16);
            let pages = &self.pages;
            let dirty_remote = self.gpms[g]
                .l2
                .flush_matching(|line| pages.lookup(line) != Some(gpm));
            for victim in dirty_remote {
                let home = self.pages.home_of(victim, gpm);
                self.txns.add(Transaction::DramToL2, SECTORS_PER_LINE);
                let t = self.noc.transfer(gpm, home, DATA_BYTES, now);
                let t = t.max(self.gpms[home.index()].dram.acquire(128, now));
                done = done.max(t);
            }
            self.gpms[g].pending.clear();
        }
        done
    }

    /// Bandwidth utilizations over `elapsed_cycles`, per resource class
    /// (diagnostics: where the machine's time went).
    pub fn utilization_report(&self, elapsed_cycles: u64) -> UtilizationReport {
        let avg = |it: &mut dyn Iterator<Item = f64>| {
            let v: Vec<f64> = it.collect();
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        let dram = avg(&mut self.gpms.iter().map(|g| g.dram.utilization(elapsed_cycles)));
        let l2 = avg(&mut self
            .gpms
            .iter()
            .map(|g| g.l2_bw.utilization(elapsed_cycles)));
        let link_stats = self.noc.link_stats();
        let link_capacity_bytes = self.params.link_capacity_bytes;
        let (avg_link, max_link) =
            if link_stats.is_empty() || elapsed_cycles == 0 || !link_capacity_bytes.is_finite() {
                (0.0, 0.0)
            } else {
                let utils: Vec<f64> = link_stats
                    .iter()
                    .map(|&(served, _)| {
                        (served as f64 / (link_capacity_bytes * elapsed_cycles as f64)).min(1.0)
                    })
                    .collect();
                (
                    utils.iter().sum::<f64>() / utils.len() as f64,
                    utils.iter().copied().fold(0.0, f64::max),
                )
            };
        UtilizationReport {
            dram,
            l2,
            link_avg: avg_link,
            link_max: max_link,
            l1_hit_rate: self.l1_hit_rate(),
            l2_hit_rate: self.l2_hit_rate(),
        }
    }

    /// Aggregate L2 hit rate across modules (diagnostics).
    pub fn l2_hit_rate(&self) -> f64 {
        let (mut h, mut m) = (0u64, 0u64);
        for g in &self.gpms {
            let (gh, gm) = g.l2.stats();
            h += gh;
            m += gm;
        }
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Aggregate L1 hit rate across SMs (diagnostics).
    pub fn l1_hit_rate(&self) -> f64 {
        let (mut h, mut m) = (0u64, 0u64);
        for c in &self.l1 {
            let (ch, cm) = c.stats();
            h += ch;
            m += cm;
        }
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BwSetting, GpuConfig, Topology};

    fn sm(gpm: u16, local: u16) -> SmId {
        SmId::new(GpmId::new(gpm), local)
    }

    fn system(n: usize) -> MemorySystem {
        MemorySystem::new(&GpuConfig::paper(n, BwSetting::X2, Topology::Ring))
    }

    #[test]
    fn l1_hit_is_fast_and_counts_one_txn() {
        let mut m = system(1);
        let first = m.access(sm(0, 0), MemRef::global_load(0x1000), 0);
        assert!(first.blocking);
        // Fill travelled DRAM -> L2 -> L1.
        assert_eq!(m.txns().get(Transaction::DramToL2), 4);
        assert_eq!(m.txns().get(Transaction::L2ToL1), 4);
        assert_eq!(m.txns().get(Transaction::L1ToReg), 1);

        let second = m.access(sm(0, 0), MemRef::global_load(0x1000), first.completion);
        assert_eq!(m.txns().get(Transaction::L1ToReg), 2);
        assert_eq!(
            m.txns().get(Transaction::DramToL2),
            4,
            "no extra DRAM traffic"
        );
        assert!(second.completion < first.completion + 100);
    }

    #[test]
    fn l2_hit_avoids_dram() {
        let mut m = system(1);
        // SM0 fills the line; SM1's L1 misses but the L2 hits.
        let a = m.access(sm(0, 0), MemRef::global_load(0x2000), 0);
        let b = m.access(sm(0, 1), MemRef::global_load(0x2000), a.completion);
        assert_eq!(m.txns().get(Transaction::DramToL2), 4);
        assert!(b.completion < a.completion + 400);
    }

    #[test]
    fn local_vs_remote_latency() {
        let mut m = system(4);
        // GPM0 touches page A (home 0); GPM1 touches page B (home 1).
        let local = m.access(sm(0, 0), MemRef::global_load(0), 0);
        let remote = m.access(sm(1, 0), MemRef::global_load(0x40000), 0); // page B local to GPM1
        assert_eq!(
            local.completion, remote.completion,
            "both are local first touches"
        );
        // Now GPM1 reads page A: remote.
        let cross = m.access(sm(1, 0), MemRef::global_load(128), 1_000_000);
        let base = m.access(sm(0, 0), MemRef::global_load(256), 1_000_000);
        assert!(
            cross.completion > base.completion,
            "remote {} should exceed local {}",
            cross.completion,
            base.completion
        );
        assert!(m.inter_gpm_hop_bytes() > 0);
    }

    #[test]
    fn stores_do_not_block() {
        let mut m = system(2);
        let st = m.access(sm(0, 0), MemRef::global_store(0x3000), 5);
        assert!(!st.blocking);
        // One LSU port cycle plus the write-buffer hand-off.
        assert_eq!(st.completion, 7);
        // Store placed the page locally.
        assert_eq!(m.pages().lookup(0x3000), Some(GpmId::new(0)));
    }

    #[test]
    fn dirty_remote_lines_flush_at_kernel_boundary() {
        let mut m = system(2);
        // GPM1 first-touches the page so it homes there.
        m.access(sm(1, 0), MemRef::global_load(0x8000_0000), 0);
        // GPM0 stores to the same page: dirty remote line in GPM0's L2.
        m.access(sm(0, 0), MemRef::global_store(0x8000_0080), 10);
        let hop_before = m.inter_gpm_hop_bytes();
        let done = m.kernel_boundary(1000);
        assert!(done > 1000, "flush should take time");
        assert!(
            m.inter_gpm_hop_bytes() > hop_before,
            "flush crossed the NoC"
        );
    }

    #[test]
    fn kernel_boundary_clears_l1s() {
        let mut m = system(1);
        m.access(sm(0, 0), MemRef::global_load(0x100), 0);
        m.kernel_boundary(10_000);
        let before = m.txns().get(Transaction::DramToL2);
        // After the boundary the L1 must miss again (L2 still hits).
        m.access(sm(0, 0), MemRef::global_load(0x100), 20_000);
        assert_eq!(m.txns().get(Transaction::L2ToL1), 8, "two L1 fills");
        assert_eq!(
            m.txns().get(Transaction::DramToL2),
            before,
            "L2 retained the line"
        );
    }

    #[test]
    fn shared_memory_stays_on_sm() {
        let mut m = system(2);
        let out = m.access(sm(0, 0), MemRef::shared(0x40, false), 0);
        assert!(out.blocking);
        assert_eq!(m.txns().get(Transaction::SharedToReg), 1);
        assert_eq!(m.inter_gpm_hop_bytes(), 0);
        assert_eq!(m.txns().get(Transaction::L1ToReg), 0);
    }

    #[test]
    fn miss_merging_caps_duplicate_fills() {
        let mut m = system(1);
        // Two SMs miss the same line back to back; DRAM traffic is charged
        // once for the fill plus nothing for the merged request.
        let a = m.access(sm(0, 0), MemRef::global_load(0x5000), 0);
        let b = m.access(sm(0, 1), MemRef::global_load(0x5000), 1);
        assert_eq!(m.txns().get(Transaction::DramToL2), 4);
        assert!(b.completion >= a.completion.min(b.completion));
        assert!(b.completion >= 1);
    }

    #[test]
    fn first_touch_places_pages_on_toucher() {
        let mut m = system(4);
        m.access(sm(2, 0), MemRef::global_load(0x100_0000), 0);
        assert_eq!(m.pages().lookup(0x100_0000), Some(GpmId::new(2)));
    }

    #[test]
    fn utilization_report_reflects_traffic() {
        let mut m = system(2);
        // Stream 256 distinct lines from SM (0,0): DRAM sees traffic.
        for i in 0..256u64 {
            m.access(sm(0, 0), MemRef::global_load(i * 128), i);
        }
        let report = m.utilization_report(1000);
        assert!(report.dram > 0.0, "dram should be utilized: {report}");
        assert!(report.dram <= 1.0);
        assert!(report.link_max >= report.link_avg);
        // No inter-GPM traffic in this pattern (all first-touch local).
        assert_eq!(report.link_avg, 0.0);
        let empty = MemorySystem::new(&GpuConfig::paper(2, BwSetting::X2, Topology::Ring));
        let r0 = empty.utilization_report(0);
        assert_eq!(r0.dram, 0.0);
    }

    #[test]
    fn hit_rates_reported() {
        let mut m = system(1);
        m.access(sm(0, 0), MemRef::global_load(0x0), 0);
        m.access(sm(0, 0), MemRef::global_load(0x0), 500);
        assert!(m.l1_hit_rate() > 0.0);
        assert!(m.l2_hit_rate() >= 0.0);
    }
}
