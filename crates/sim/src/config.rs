//! Simulated GPU configurations (Tables III and IV of the paper).
//!
//! The building block is a K40-class GPM: 16 SMs, 32 KiB L1 per SM, a
//! 2 MiB module-side L2, and one HBM stack at 256 GB/s. Multi-module GPUs
//! replicate this block 2–32× and connect the modules with a ring or a
//! high-radix switch at one of three per-GPM I/O bandwidth settings.

use common::units::{Bandwidth, Bytes, Frequency};
use std::fmt;

/// Per-GPM I/O bandwidth settings (Table IV), expressed relative to the
/// local DRAM bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BwSetting {
    /// 128 GB/s — a 1:2 inter-GPM:DRAM ratio; on-board integration.
    X1,
    /// 256 GB/s — 1:1; baseline on-package integration.
    X2,
    /// 512 GB/s — 2:1; next-generation on-package signaling.
    X4,
}

impl BwSetting {
    /// All settings in increasing-bandwidth order.
    pub const ALL: [BwSetting; 3] = [BwSetting::X1, BwSetting::X2, BwSetting::X4];

    /// Inter-GPM bandwidth per GPM for a given DRAM bandwidth.
    pub fn inter_gpm_bw(self, dram_bw: Bandwidth) -> Bandwidth {
        match self {
            BwSetting::X1 => dram_bw * 0.5,
            BwSetting::X2 => dram_bw,
            BwSetting::X4 => dram_bw * 2.0,
        }
    }

    /// Table label ("1x-BW" etc.).
    pub fn label(self) -> &'static str {
        match self {
            BwSetting::X1 => "1x-BW",
            BwSetting::X2 => "2x-BW",
            BwSetting::X4 => "4x-BW",
        }
    }
}

impl fmt::Display for BwSetting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How CTAs are distributed across modules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CtaSchedule {
    /// Contiguous block partition: CTA `i` runs on module `i / (C/N)`.
    /// This is the locality-aware distributed scheduling of MCM-GPU that
    /// the paper adopts — consecutive CTAs (which share data) stay on one
    /// module.
    Contiguous,
    /// Naive round-robin: CTA `i` runs on module `i % N`. Destroys the
    /// CTA-adjacency locality that first-touch placement relies on; kept
    /// as an ablation of the paper's scheduling choice.
    RoundRobin,
}

impl fmt::Display for CtaSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtaSchedule::Contiguous => write!(f, "contiguous"),
            CtaSchedule::RoundRobin => write!(f, "round-robin"),
        }
    }
}

/// Where pages are homed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PagePolicy {
    /// First-touch: a page lives on the module that first accesses it
    /// (the paper's policy, after MCM-GPU / NUMA-GPU).
    FirstTouch,
    /// Static round-robin interleaving by page number, as classic NUMA
    /// systems default to; an ablation of the placement choice.
    Interleaved,
}

impl fmt::Display for PagePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PagePolicy::FirstTouch => write!(f, "first-touch"),
            PagePolicy::Interleaved => write!(f, "interleaved"),
        }
    }
}

/// Which side of the NUMA boundary the L2 sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum L2Mode {
    /// Module-side: each module's L2 caches whatever that module
    /// accesses, local or remote, with software-coherence flushes of
    /// remote lines at kernel boundaries. The organization the paper
    /// switches to for 2+ GPMs (§V-A1).
    ModuleSide,
    /// Memory-side: each L2 caches only its local DRAM; remote requests
    /// cross the NoC on every access and probe the *home* module's L2.
    /// The monolithic-style organization the paper moves away from; kept
    /// as an ablation.
    MemorySide,
}

impl fmt::Display for L2Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            L2Mode::ModuleSide => write!(f, "module-side"),
            L2Mode::MemorySide => write!(f, "memory-side"),
        }
    }
}

/// Warp-scheduling policy within an SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WarpScheduler {
    /// Loose round robin: rotate through ready warps (the default).
    LooseRoundRobin,
    /// Greedy-then-oldest: keep issuing the same warp until it stalls,
    /// then fall back to the oldest ready warp (Rogers et al.). Kept as
    /// an ablation — the paper's §II position is that such detail is
    /// second-order for energy at system scale.
    GreedyThenOldest,
}

impl fmt::Display for WarpScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarpScheduler::LooseRoundRobin => write!(f, "lrr"),
            WarpScheduler::GreedyThenOldest => write!(f, "gto"),
        }
    }
}

/// Inter-GPM network topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// Bidirectional ring; transfers consume bandwidth on every traversed
    /// link (the paper's on-package and baseline on-board organization).
    Ring,
    /// High-radix switch: every GPM has one full-bandwidth link to a
    /// central non-blocking switch (NVSwitch-style, §V-C).
    Switch,
    /// Idealized interconnect with unlimited bandwidth and zero latency;
    /// used for the hypothetical monolithic comparison in §V-B.
    Ideal,
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Topology::Ring => write!(f, "ring"),
            Topology::Switch => write!(f, "switch"),
            Topology::Ideal => write!(f, "ideal"),
        }
    }
}

/// Configuration of one GPU module (the Table III building block).
#[derive(Debug, Clone, PartialEq)]
pub struct GpmConfig {
    /// SMs per module.
    pub sms: usize,
    /// Core clock (1 GHz: one cycle is one nanosecond).
    pub clock: Frequency,
    /// Warp instructions each SM can issue per cycle.
    pub issue_width: u32,
    /// Maximum warps resident on one SM.
    pub max_resident_warps: usize,
    /// Independent loads one warp may have in flight (memory-level
    /// parallelism from unrolled/pipelined code; the warp stalls when it
    /// would exceed this).
    pub mlp_per_warp: usize,
    /// L1 data cache per SM.
    pub l1_bytes: Bytes,
    /// L1 associativity.
    pub l1_assoc: usize,
    /// Module-side L2 per GPM.
    pub l2_bytes: Bytes,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// L2 aggregate bandwidth.
    pub l2_bw: Bandwidth,
    /// Local DRAM (HBM stack) bandwidth.
    pub dram_bw: Bandwidth,
    /// L1 hit latency, cycles.
    pub l1_latency: u64,
    /// Shared-memory latency, cycles.
    pub shared_latency: u64,
    /// L2 hit latency, cycles.
    pub l2_latency: u64,
    /// DRAM access latency, cycles.
    pub dram_latency: u64,
}

impl GpmConfig {
    /// The paper's basic GPM: 16 SMs, 32 KiB L1, 2 MiB L2, 256 GB/s HBM.
    pub fn k40_class() -> Self {
        GpmConfig {
            sms: 16,
            clock: Frequency::from_ghz(1.0),
            issue_width: 4,
            max_resident_warps: 32,
            mlp_per_warp: 4,
            l1_bytes: Bytes::from_kib(32),
            l1_assoc: 4,
            l2_bytes: Bytes::from_mib(2),
            l2_assoc: 16,
            l2_bw: Bandwidth::from_gb_per_sec(1024.0),
            dram_bw: Bandwidth::from_gb_per_sec(256.0),
            l1_latency: 28,
            shared_latency: 24,
            l2_latency: 120,
            dram_latency: 260,
        }
    }

    /// A hypothetical Pascal-class module (P100-flavoured): more SMs at a
    /// higher clock, HBM2 bandwidth, a larger L2. Used by the §IV-B3
    /// portability demonstration.
    pub fn pascal_class() -> Self {
        GpmConfig {
            sms: 28,
            clock: Frequency::from_ghz(1.3),
            issue_width: 4,
            max_resident_warps: 32,
            mlp_per_warp: 4,
            l1_bytes: Bytes::from_kib(24),
            l1_assoc: 4,
            l2_bytes: Bytes::from_mib(4),
            l2_assoc: 16,
            l2_bw: Bandwidth::from_gb_per_sec(2048.0),
            dram_bw: Bandwidth::from_gb_per_sec(720.0),
            l1_latency: 30,
            shared_latency: 24,
            l2_latency: 130,
            dram_latency: 300,
        }
    }

    /// A scaled-down GPM for fast unit tests (4 SMs, small caches).
    pub fn tiny() -> Self {
        GpmConfig {
            sms: 4,
            max_resident_warps: 16,
            l1_bytes: Bytes::from_kib(8),
            l2_bytes: Bytes::from_kib(256),
            ..Self::k40_class()
        }
    }
}

/// Full multi-module GPU configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// The per-module building block.
    pub gpm: GpmConfig,
    /// Number of modules (1–32 in the paper's sweep).
    pub num_gpms: usize,
    /// Per-GPM inter-module I/O bandwidth (total egress per GPM).
    pub inter_gpm_bw: Bandwidth,
    /// Network topology.
    pub topology: Topology,
    /// Per-hop link latency, cycles.
    pub link_latency: u64,
    /// Additional switch traversal latency, cycles.
    pub switch_latency: u64,
    /// Page size for first-touch placement.
    pub page_bytes: Bytes,
    /// Inter-GPM link compression ratio (≥ 1.0; 1.0 = off). Compressed
    /// transfers consume proportionally less link bandwidth — the §V-E
    /// data-compression extension. The compression engine's energy is
    /// charged by the energy model, not here.
    pub link_compression: f64,
    /// CTA distribution across modules.
    pub cta_schedule: CtaSchedule,
    /// Warp-scheduling policy within each SM.
    pub warp_scheduler: WarpScheduler,
    /// Page-placement policy.
    pub page_policy: PagePolicy,
    /// L2 organization.
    pub l2_mode: L2Mode,
}

impl GpuConfig {
    /// The paper's configuration for `num_gpms` modules at bandwidth
    /// setting `bw` with topology `topology` (Tables III and IV).
    ///
    /// On-board settings (1x-BW) get a longer per-hop latency than
    /// on-package ones.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpms` is zero.
    pub fn paper(num_gpms: usize, bw: BwSetting, topology: Topology) -> Self {
        assert!(num_gpms > 0, "a GPU needs at least one GPM");
        let gpm = GpmConfig::k40_class();
        let link_latency = match bw {
            BwSetting::X1 => 180,                // on-board (NVLink-class hop)
            BwSetting::X2 | BwSetting::X4 => 60, // on-package
        };
        GpuConfig {
            inter_gpm_bw: bw.inter_gpm_bw(gpm.dram_bw),
            gpm,
            num_gpms,
            topology,
            link_latency,
            switch_latency: 100,
            page_bytes: Bytes::from_kib(64),
            link_compression: 1.0,
            cta_schedule: CtaSchedule::Contiguous,
            warp_scheduler: WarpScheduler::LooseRoundRobin,
            page_policy: PagePolicy::FirstTouch,
            l2_mode: L2Mode::ModuleSide,
        }
    }

    /// The single-module baseline (Table III's 1-GPM column).
    pub fn single_gpm() -> Self {
        Self::paper(1, BwSetting::X2, Topology::Ring)
    }

    /// A small configuration for fast unit tests.
    pub fn tiny(num_gpms: usize) -> Self {
        let gpm = GpmConfig::tiny();
        GpuConfig {
            inter_gpm_bw: BwSetting::X2.inter_gpm_bw(gpm.dram_bw),
            gpm,
            num_gpms,
            topology: Topology::Ring,
            link_latency: 40,
            switch_latency: 40,
            page_bytes: Bytes::from_kib(64),
            link_compression: 1.0,
            cta_schedule: CtaSchedule::Contiguous,
            warp_scheduler: WarpScheduler::LooseRoundRobin,
            page_policy: PagePolicy::FirstTouch,
            l2_mode: L2Mode::ModuleSide,
        }
    }

    /// Total SM count across all modules.
    pub fn total_sms(&self) -> usize {
        self.gpm.sms * self.num_gpms
    }

    /// Aggregate DRAM bandwidth (Table III row).
    pub fn total_dram_bw(&self) -> Bandwidth {
        self.gpm.dram_bw * self.num_gpms as f64
    }

    /// Aggregate L2 capacity (Table III row).
    pub fn total_l2_bytes(&self) -> Bytes {
        Bytes::new(self.gpm.l2_bytes.count() * self.num_gpms as u64)
    }

    /// Maximum warps resident across the whole GPU.
    pub fn total_resident_warps(&self) -> usize {
        self.total_sms() * self.gpm.max_resident_warps
    }
}

impl fmt::Display for GpuConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-GPM ({} SMs, {} L2, {} DRAM, {} inter-GPM, {})",
            self.num_gpms,
            self.total_sms(),
            self.total_l2_bytes(),
            self.total_dram_bw(),
            self.inter_gpm_bw,
            self.topology
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bw_settings_match_table_iv() {
        let dram = Bandwidth::from_gb_per_sec(256.0);
        assert!((BwSetting::X1.inter_gpm_bw(dram).gb_per_sec() - 128.0).abs() < 1e-9);
        assert!((BwSetting::X2.inter_gpm_bw(dram).gb_per_sec() - 256.0).abs() < 1e-9);
        assert!((BwSetting::X4.inter_gpm_bw(dram).gb_per_sec() - 512.0).abs() < 1e-9);
    }

    #[test]
    fn table_iii_totals_scale_linearly() {
        for (n, sms, l2_mb, dram) in [
            (1usize, 16usize, 2u64, 256.0),
            (8, 128, 16, 2048.0),
            (32, 512, 64, 8192.0),
        ] {
            let cfg = GpuConfig::paper(n, BwSetting::X2, Topology::Ring);
            assert_eq!(cfg.total_sms(), sms);
            assert_eq!(cfg.total_l2_bytes(), Bytes::from_mib(l2_mb));
            assert!((cfg.total_dram_bw().gb_per_sec() - dram).abs() < 1e-9);
        }
    }

    #[test]
    fn k40_class_matches_paper_gpm() {
        let g = GpmConfig::k40_class();
        assert_eq!(g.sms, 16);
        assert_eq!(g.l1_bytes, Bytes::from_kib(32));
        assert_eq!(g.l2_bytes, Bytes::from_mib(2));
        assert!((g.dram_bw.gb_per_sec() - 256.0).abs() < 1e-9);
    }

    #[test]
    fn pascal_class_is_a_bigger_faster_module() {
        let k40 = GpmConfig::k40_class();
        let pascal = GpmConfig::pascal_class();
        assert!(pascal.sms > k40.sms);
        assert!(pascal.clock.hz() > k40.clock.hz());
        assert!(pascal.dram_bw.gb_per_sec() > k40.dram_bw.gb_per_sec());
        assert!(pascal.l2_bytes > k40.l2_bytes);
        // Cache geometry stays constructible.
        let _ = crate::cache::Cache::new(pascal.l1_bytes.count(), pascal.l1_assoc, 128);
        let _ = crate::cache::Cache::new(pascal.l2_bytes.count(), pascal.l2_assoc, 128);
    }

    #[test]
    fn on_board_links_are_slower() {
        let board = GpuConfig::paper(8, BwSetting::X1, Topology::Ring);
        let pkg = GpuConfig::paper(8, BwSetting::X2, Topology::Ring);
        assert!(board.link_latency > pkg.link_latency);
    }

    #[test]
    #[should_panic(expected = "at least one GPM")]
    fn zero_gpms_panics() {
        let _ = GpuConfig::paper(0, BwSetting::X2, Topology::Ring);
    }

    #[test]
    fn display_summarizes() {
        let s = GpuConfig::paper(4, BwSetting::X2, Topology::Ring).to_string();
        assert!(s.contains("4-GPM"));
        assert!(s.contains("ring"));
    }
}
