//! Bandwidth-limited resources modeled as fluid queues.
//!
//! Every throughput-limited component (DRAM channel, L2 port, NoC link,
//! L1 port) is a [`BwResource`]: requests acquire service in arrival order
//! and the resource's *virtual time* advances by `bytes / bytes_per_cycle`
//! per request. A request arriving while the resource is backed up is
//! queued behind the backlog — this reproduces bandwidth saturation and
//! queueing delay without simulating individual buffer slots.

/// A bandwidth-limited, work-conserving FIFO resource.
///
/// # Examples
///
/// ```
/// use sim::bw::BwResource;
///
/// // A 64 B/cycle link.
/// let mut link = BwResource::new(64.0);
/// // Two back-to-back 128 B transfers at cycle 0: the second queues.
/// assert_eq!(link.acquire(128, 0), 2);
/// assert_eq!(link.acquire(128, 0), 4);
/// // After the backlog drains, service is immediate again.
/// assert_eq!(link.acquire(64, 100), 101);
/// ```
#[derive(Debug, Clone)]
pub struct BwResource {
    bytes_per_cycle: f64,
    virtual_time: f64,
    busy_byte_cycles: f64,
}

impl BwResource {
    /// Creates a resource serving `bytes_per_cycle` bytes per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not positive (use
    /// [`BwResource::unlimited`] for an infinite resource).
    pub fn new(bytes_per_cycle: f64) -> Self {
        assert!(
            bytes_per_cycle > 0.0,
            "bandwidth must be positive, got {bytes_per_cycle}"
        );
        BwResource {
            bytes_per_cycle,
            virtual_time: 0.0,
            busy_byte_cycles: 0.0,
        }
    }

    /// A resource with unbounded bandwidth (zero service time). Used for
    /// the ideal-interconnect (monolithic) comparison runs.
    pub fn unlimited() -> Self {
        BwResource {
            bytes_per_cycle: f64::INFINITY,
            virtual_time: 0.0,
            busy_byte_cycles: 0.0,
        }
    }

    /// Requests service for `bytes` starting no earlier than cycle `now`;
    /// returns the cycle at which the transfer completes.
    pub fn acquire(&mut self, bytes: u64, now: u64) -> u64 {
        let start = self.virtual_time.max(now as f64);
        if self.bytes_per_cycle.is_infinite() {
            self.virtual_time = start;
            return now;
        }
        let service = bytes as f64 / self.bytes_per_cycle;
        self.virtual_time = start + service;
        self.busy_byte_cycles += bytes as f64;
        self.virtual_time.ceil() as u64
    }

    /// The cycle at which the current backlog drains.
    pub fn backlog_until(&self) -> u64 {
        self.virtual_time.ceil() as u64
    }

    /// Total bytes served so far.
    pub fn bytes_served(&self) -> u64 {
        self.busy_byte_cycles as u64
    }

    /// Average utilization over `elapsed_cycles` (bytes served over
    /// capacity); zero for an unlimited resource or zero elapsed time.
    pub fn utilization(&self, elapsed_cycles: u64) -> f64 {
        if elapsed_cycles == 0 || self.bytes_per_cycle.is_infinite() {
            return 0.0;
        }
        (self.busy_byte_cycles / (self.bytes_per_cycle * elapsed_cycles as f64)).min(1.0)
    }

    /// Resets the queue state (but not the served-bytes statistics).
    pub fn reset_queue(&mut self) {
        self.virtual_time = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_service_time() {
        let mut r = BwResource::new(32.0);
        // 128 B at 32 B/cycle -> done at cycle 4.
        assert_eq!(r.acquire(128, 0), 4);
    }

    #[test]
    fn backlog_queues_requests() {
        let mut r = BwResource::new(32.0);
        let a = r.acquire(128, 0);
        let b = r.acquire(128, 0);
        let c = r.acquire(128, 0);
        assert_eq!(a, 4);
        assert_eq!(b, 8);
        assert_eq!(c, 12);
        assert_eq!(r.backlog_until(), 12);
    }

    #[test]
    fn idle_resource_serves_at_arrival() {
        let mut r = BwResource::new(32.0);
        r.acquire(128, 0);
        // Arriving long after the backlog drained: no queueing delay.
        assert_eq!(r.acquire(32, 1000), 1001);
    }

    #[test]
    fn fractional_service_accumulates_exactly() {
        let mut r = BwResource::new(3.0);
        // Each 1-byte transfer takes 1/3 cycle; three of them take 1 cycle.
        let t1 = r.acquire(1, 0);
        let t2 = r.acquire(1, 0);
        let t3 = r.acquire(1, 0);
        assert_eq!(t1, 1);
        assert_eq!(t2, 1);
        assert_eq!(t3, 1);
        let t4 = r.acquire(1, 0);
        assert_eq!(t4, 2);
    }

    #[test]
    fn unlimited_resource_is_instant() {
        let mut r = BwResource::unlimited();
        assert_eq!(r.acquire(1 << 30, 7), 7);
        assert_eq!(r.acquire(1 << 30, 7), 7);
        assert_eq!(r.utilization(100), 0.0);
    }

    #[test]
    fn utilization_tracks_served_bytes() {
        let mut r = BwResource::new(10.0);
        r.acquire(50, 0);
        assert!((r.utilization(10) - 0.5).abs() < 1e-12);
        assert_eq!(r.utilization(0), 0.0);
        assert_eq!(r.bytes_served(), 50);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        let _ = BwResource::new(0.0);
    }

    #[test]
    fn reset_queue_clears_backlog() {
        let mut r = BwResource::new(1.0);
        r.acquire(1000, 0);
        assert_eq!(r.backlog_until(), 1000);
        r.reset_queue();
        assert_eq!(r.acquire(1, 0), 1);
    }
}
