//! Property tests for the virtual silicon: measurement invariants that
//! must hold for any run profile.

use common::units::{Power, Time};
use isa::{EventCounts, Opcode, Transaction};
use proptest::prelude::*;
use silicon::{HiddenBehavior, KernelActivity, RunProfile, SensorConfig, VirtualK40};

fn kernel() -> impl Strategy<Value = KernelActivity> {
    (
        1.0_f64..200.0,       // duration ms
        0_u64..2_000_000_000, // ffma thread-instrs
        0_u64..20_000_000,    // dram sectors
        0.2_f64..1.0,         // lane utilization
    )
        .prop_map(|(ms, instrs, dram, lanes)| {
            let mut c = EventCounts::new();
            c.instrs.add(Opcode::FFma32, instrs);
            c.txns.add(Transaction::DramToL2, dram);
            KernelActivity::new(
                Time::from_millis(ms),
                c,
                HiddenBehavior {
                    lane_utilization: lanes,
                    ..HiddenBehavior::regular()
                },
            )
        })
}

fn profile() -> impl Strategy<Value = RunProfile> {
    (
        prop::collection::vec((kernel(), 0.0_f64..5.0), 1..8),
        "[a-z]{3,8}",
    )
        .prop_map(|(phases, name)| {
            let mut p = RunProfile::new(name);
            for (k, gap_ms) in phases {
                p = p.kernel(k).idle(Time::from_millis(gap_ms));
            }
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn true_energy_is_at_least_idle_floor(p in profile()) {
        let hw = VirtualK40::new();
        let e = hw.true_energy(&p);
        let idle_floor = hw.truth().idle_power() * p.total_duration();
        prop_assert!(e.joules() >= idle_floor.joules() * (1.0 - 1e-9));
    }

    #[test]
    fn measurement_is_deterministic(p in profile()) {
        let hw = VirtualK40::new();
        let a = hw.measure(&p);
        let b = hw.measure(&p);
        prop_assert_eq!(a.measured_energy, b.measured_energy);
        prop_assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn samples_cover_the_run(p in profile()) {
        let hw = VirtualK40::new();
        let m = hw.measure(&p);
        let expected = (p.total_duration().secs() / 0.015).ceil().max(1.0) as usize;
        prop_assert_eq!(m.samples.len(), expected);
        prop_assert!(m.measured_energy.joules() >= 0.0);
    }

    #[test]
    fn long_steady_runs_measure_within_five_percent(
        instrs in 100_000_000_u64..3_000_000_000,
        dram in 0_u64..10_000_000,
    ) {
        // One long kernel (>= 60 sensor windows): the sensor integral must
        // track the truth closely regardless of the activity mix.
        let mut c = EventCounts::new();
        c.instrs.add(Opcode::FFma32, instrs);
        c.txns.add(Transaction::DramToL2, dram);
        let k = KernelActivity::new(
            Time::from_millis(900.0),
            c,
            HiddenBehavior::regular(),
        );
        let p = RunProfile::new("steady").kernel(k);
        let hw = VirtualK40::new();
        let m = hw.measure(&p);
        prop_assert!(
            m.sensor_error().abs() < 0.05,
            "sensor error {:.3}",
            m.sensor_error()
        );
    }

    #[test]
    fn divergence_only_increases_true_energy(p_base in kernel()) {
        let hw = VirtualK40::new();
        let mut diverged = p_base.clone();
        diverged.behavior.lane_utilization = (p_base.behavior.lane_utilization * 0.5).max(0.05);
        let base = hw.truth().kernel_dynamic_energy(&p_base);
        let div = hw.truth().kernel_dynamic_energy(&diverged);
        prop_assert!(div.joules() >= base.joules());
    }

    #[test]
    fn active_measurement_never_exceeds_duration_times_peak(p in profile()) {
        let hw = VirtualK40::new().with_sensor(SensorConfig::ideal());
        let m = hw.measure_active(&p);
        // With an ideal (instantaneous) sensor, attributed energy is the
        // true active energy.
        prop_assert!(
            m.measured_energy.joules() <= m.true_energy.joules() * 1.01 + 1e-9,
            "measured {} vs true {}",
            m.measured_energy,
            m.true_energy
        );
        prop_assert!(m.duration <= p.total_duration());
    }

    #[test]
    fn idle_reading_tracks_idle_power(secs in 0.1_f64..3.0) {
        let hw = VirtualK40::new();
        let r = hw.measure_idle(Time::from_secs(secs));
        prop_assert!((r.watts() - 62.0).abs() < 2.0, "idle reading {r}");
        let _ = Power::ZERO;
    }
}
