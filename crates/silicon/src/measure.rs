//! The virtual K40 board: truth model + sensor + measurement protocol.
//!
//! [`VirtualK40::measure`] reproduces the paper's measurement procedure:
//! run the workload, poll the NVML sensor every refresh period, and
//! integrate `reading × refresh_period` into an energy figure. For long
//! steady-state runs this is accurate; for runs built from sub-millisecond
//! kernels it aliases — exactly the limitation §IV-B2 blames for the BFS
//! and MiniAMR outliers.

use crate::profile::{Phase, RunProfile};
use crate::sensor::{PowerSensor, SensorConfig};
use crate::truth::TruthModel;
use common::units::{Energy, Power, Time};
use std::fmt;

/// The result of measuring one run through the board sensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Name of the measured run.
    pub name: String,
    /// Energy obtained by integrating sensor readings (what an
    /// experimenter gets — includes sensor distortion).
    pub measured_energy: Energy,
    /// The energy the silicon actually consumed over the run (ground
    /// truth; a real experimenter never sees this).
    pub true_energy: Energy,
    /// Wall-clock duration of the run.
    pub duration: Time,
    /// The individual sensor readings, one per refresh period.
    pub samples: Vec<Power>,
}

impl Measurement {
    /// Average measured power over the sampled windows. NaN readings
    /// (injected sensor glitches) are excluded from the average.
    pub fn average_power(&self) -> Power {
        let mut sum = 0.0;
        let mut n = 0usize;
        for p in &self.samples {
            if p.watts().is_finite() {
                sum += p.watts();
                n += 1;
            }
        }
        if n == 0 {
            Power::ZERO
        } else {
            Power::from_watts(sum / n as f64)
        }
    }

    /// Relative sensor distortion: `(measured − true) / true`, or zero
    /// when the true energy is zero.
    pub fn sensor_error(&self) -> f64 {
        let t = self.true_energy.joules();
        if t == 0.0 {
            0.0
        } else {
            (self.measured_energy.joules() - t) / t
        }
    }
}

impl fmt::Display for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: measured {} over {} ({} samples, sensor error {:+.1}%)",
            self.name,
            self.measured_energy,
            self.duration,
            self.samples.len(),
            self.sensor_error() * 100.0
        )
    }
}

/// The virtual Tesla K40 board.
///
/// Combines the hidden [`TruthModel`] with a [`SensorConfig`] and exposes
/// the two things an experimenter can do: measure a run, and measure idle
/// power.
#[derive(Debug, Clone, Default)]
pub struct VirtualK40 {
    truth: TruthModel,
    sensor: SensorConfig,
}

impl VirtualK40 {
    /// A board with the default truth model and K40 sensor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the sensor (e.g. [`SensorConfig::ideal`] in tests).
    pub fn with_sensor(mut self, sensor: SensorConfig) -> Self {
        self.sensor = sensor;
        self
    }

    /// Replaces the truth model.
    pub fn with_truth(mut self, truth: TruthModel) -> Self {
        self.truth = truth;
        self
    }

    /// The hidden truth model (tests and documentation only — the fitting
    /// pipeline must not read this).
    pub fn truth(&self) -> &TruthModel {
        &self.truth
    }

    /// True board power during one phase (idle power included).
    pub fn true_phase_power(&self, phase: &Phase) -> Power {
        match phase {
            Phase::Idle(_) => self.truth.idle_power(),
            Phase::Kernel(k) => {
                let launch = self.truth.launch_energy() / k.duration;
                self.truth.idle_power() + self.truth.kernel_dynamic_power(k) + launch
            }
        }
    }

    /// Ground-truth energy of a whole run (idle power over gaps included).
    pub fn true_energy(&self, profile: &RunProfile) -> Energy {
        profile
            .phases()
            .iter()
            .map(|p| self.true_phase_power(p) * p.duration())
            .sum()
    }

    /// Measures a run through the board sensor.
    ///
    /// Readings are taken every `refresh_period`; the measured energy is
    /// the sum of `reading × refresh_period` over all windows covering the
    /// run. The final window almost always extends past the end of the
    /// run; the board sits at idle power for that tail, exactly as a real
    /// measurement script would record.
    pub fn measure(&self, profile: &RunProfile) -> Measurement {
        let _span = trace::span("silicon.measure");
        let mut cfg = self.sensor.clone();
        cfg.seed ^= fxhash(profile.name());
        let mut sensor = PowerSensor::new(cfg, self.truth.idle_power());

        let refresh = self.sensor.refresh_period;
        let total = profile.total_duration();
        let mut samples = Vec::new();

        // Walk the timeline, advancing the filter through each
        // constant-power segment and emitting a reading at every multiple
        // of the refresh period.
        let mut now = Time::ZERO; // time within current window
        let mut phase_iter = profile.phases().iter();
        let mut current: Option<(Power, Time)> = phase_iter
            .next()
            .map(|p| (self.true_phase_power(p), p.duration()));

        let n_windows = (total.secs() / refresh.secs()).ceil().max(1.0) as usize;
        for _ in 0..n_windows {
            let mut remaining = refresh;
            while remaining.is_positive() {
                match current {
                    Some((power, left)) => {
                        let step = if left < remaining { left } else { remaining };
                        sensor.advance(power, step);
                        remaining -= step;
                        let new_left = left - step;
                        if new_left.is_positive() {
                            current = Some((power, new_left));
                        } else {
                            current = phase_iter
                                .next()
                                .map(|p| (self.true_phase_power(p), p.duration()));
                        }
                    }
                    None => {
                        // Run finished: board idles out the rest of the window.
                        sensor.advance(self.truth.idle_power(), remaining);
                        remaining = Time::ZERO;
                    }
                }
            }
            now += refresh;
            let _ = now;
            samples.push(sensor.read());
            trace::count("silicon.sensor.read", 1);
        }

        // Integrate reading × window, holding the last finite reading
        // over NaN glitches — a measurement script cannot integrate NaN,
        // and holding the previous sample is what NVML pollers
        // effectively do when a query fails.
        let mut hold = self.truth.idle_power();
        let measured: Energy = samples
            .iter()
            .map(|&p| {
                if p.watts().is_finite() {
                    hold = p;
                }
                hold * refresh
            })
            .sum();

        Measurement {
            name: profile.name().to_string(),
            measured_energy: measured,
            true_energy: self.true_energy(profile),
            duration: total,
            samples,
        }
    }

    /// Measures a run the way a kernel-attributing script does: sensor
    /// readings are integrated only over *kernel execution windows*, and
    /// host gaps are excluded from both the energy and the reported
    /// duration.
    ///
    /// For kernels long against the sensor's filter this matches
    /// [`VirtualK40::measure`] over the active time. For apps built from
    /// sub-millisecond kernels, the filtered reading never ramps to the
    /// kernel's true power before the kernel ends — it tracks the
    /// duty-cycle average instead — so the measured energy lands well
    /// below the truth. This is the §IV-B2 sensor-resolution limitation
    /// behind the paper's BFS/MiniAMR outliers.
    pub fn measure_active(&self, profile: &RunProfile) -> Measurement {
        let _span = trace::span("silicon.measure_active");
        let mut cfg = self.sensor.clone();
        cfg.seed ^= fxhash(profile.name()).rotate_left(17);
        let mut sensor = PowerSensor::new(cfg, self.truth.idle_power());

        let refresh = self.sensor.refresh_period;
        let mut samples = Vec::new();
        let mut measured = common::units::Energy::ZERO;
        let mut active = Time::ZERO;
        let mut true_active = common::units::Energy::ZERO;
        // Holds the last finite reading over NaN glitches (see `measure`).
        let mut hold = self.truth.idle_power();

        for phase in profile.phases() {
            let power = self.true_phase_power(phase);
            match phase {
                Phase::Idle(t) => {
                    // The filter keeps tracking; nothing is attributed.
                    sensor.advance(power, *t);
                }
                Phase::Kernel(k) => {
                    active += k.duration;
                    true_active += power * k.duration;
                    // Read every refresh period within the kernel, plus a
                    // final reading covering the remainder.
                    let mut left = k.duration;
                    while left > refresh {
                        sensor.advance(power, refresh);
                        let r = sensor.read();
                        samples.push(r);
                        trace::count("silicon.sensor.read", 1);
                        if r.watts().is_finite() {
                            hold = r;
                        }
                        measured += hold * refresh;
                        left -= refresh;
                    }
                    sensor.advance(power, left);
                    let r = sensor.read();
                    samples.push(r);
                    trace::count("silicon.sensor.read", 1);
                    if r.watts().is_finite() {
                        hold = r;
                    }
                    measured += hold * left;
                }
            }
        }

        Measurement {
            name: profile.name().to_string(),
            measured_energy: measured,
            true_energy: true_active,
            duration: active,
            samples,
        }
    }

    /// Measures idle power: the average of sensor readings over `duration`
    /// with nothing running (the `Power_idle` of Eq. 5).
    pub fn measure_idle(&self, duration: Time) -> Power {
        let profile = RunProfile::new("idle").idle(duration);
        let m = self.measure(&profile);
        m.average_power()
    }
}

/// Deterministic string hash for per-run noise seeds. This was a local
/// FNV-1a copy before `common::digest` existed; it now delegates so the
/// workspace has exactly one FNV implementation (the constants are
/// identical, so seeds — and therefore measured noise — are unchanged).
fn fxhash(s: &str) -> u64 {
    common::digest::Fnv1a::of(s).finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{HiddenBehavior, KernelActivity};
    use isa::{EventCounts, Opcode, Transaction};

    fn steady_kernel(ms: f64) -> KernelActivity {
        let mut c = EventCounts::new();
        // ~1e9 FMA threads-instr over the kernel: a solid dynamic load.
        c.instrs.add(Opcode::FFma32, 1_000_000_000);
        KernelActivity::new(Time::from_millis(ms), c, HiddenBehavior::regular())
    }

    #[test]
    fn long_steady_run_measures_accurately() {
        let hw = VirtualK40::new();
        let profile = RunProfile::new("steady").kernel(steady_kernel(1500.0));
        let m = hw.measure(&profile);
        assert!(
            m.sensor_error().abs() < 0.03,
            "long steady run should measure within 3%, got {:.2}%",
            m.sensor_error() * 100.0
        );
    }

    #[test]
    fn faulted_sensor_still_yields_finite_nearby_energy() {
        use crate::sensor::{SensorConfig, SensorFaults};
        let profile = RunProfile::new("steady").kernel(steady_kernel(1500.0));
        let clean = VirtualK40::new().measure(&profile);
        let faulted = VirtualK40::new()
            .with_sensor(SensorConfig {
                faults: SensorFaults {
                    nan_rate: 0.15,
                    dropout_rate: 0.1,
                    seed: 99,
                },
                ..SensorConfig::k40()
            })
            .measure(&profile);
        // Glitched readings are in the sample trace…
        assert!(faulted.samples.iter().any(|p| p.watts().is_nan()));
        // …but the hold-last-finite protocol keeps the integral finite
        // and close to the clean measurement.
        let (c, f) = (
            clean.measured_energy.joules(),
            faulted.measured_energy.joules(),
        );
        assert!(f.is_finite());
        assert!(
            (f - c).abs() / c < 0.05,
            "clean {c:.1} J vs faulted {f:.1} J"
        );
        assert!(faulted.average_power().watts().is_finite());
        assert!(faulted.sensor_error().is_finite());
    }

    #[test]
    fn short_bursty_run_measures_poorly() {
        let hw = VirtualK40::new();
        // 40 launches of 300 us kernels with 150 us host gaps: the Fig. 4b
        // BFS scenario.
        let mut profile = RunProfile::new("bursty");
        for _ in 0..40 {
            let mut c = EventCounts::new();
            c.instrs.add(Opcode::FAdd32, 2_000_000);
            c.txns.add(Transaction::DramToL2, 50_000);
            let k = KernelActivity::new(
                Time::from_micros(300.0),
                c,
                HiddenBehavior::with_lane_utilization(0.55),
            );
            profile.push(Phase::Kernel(k));
            profile.push(Phase::Idle(Time::from_micros(150.0)));
        }
        let m = hw.measure(&profile);
        // The sensor cannot resolve the bursts: distortion well above the
        // steady-state case.
        assert!(
            m.sensor_error().abs() > 0.05,
            "bursty run should distort >5%, got {:.2}%",
            m.sensor_error() * 100.0
        );
    }

    #[test]
    fn true_energy_includes_idle_gaps_and_launch_ramp() {
        let hw = VirtualK40::new();
        let k = steady_kernel(10.0);
        let dynamic = hw.truth().kernel_dynamic_energy(&k);
        let profile = RunProfile::new("x").kernel(k).idle(Time::from_millis(5.0));
        let e = hw.true_energy(&profile);
        let expected = hw.truth().idle_power() * Time::from_millis(15.0)
            + dynamic
            + hw.truth().launch_energy();
        assert!((e.joules() - expected.joules()).abs() < 1e-12);
    }

    #[test]
    fn active_measurement_matches_full_for_long_kernels() {
        let hw = VirtualK40::new();
        let profile = RunProfile::new("long").kernel(steady_kernel(900.0));
        let m = hw.measure_active(&profile);
        assert!(
            m.sensor_error().abs() < 0.03,
            "long kernel should measure accurately, got {:.2}%",
            m.sensor_error() * 100.0
        );
        assert!((m.duration.millis() - 900.0).abs() < 1e-9);
    }

    #[test]
    fn active_measurement_underestimates_short_bursty_kernels() {
        let hw = VirtualK40::new();
        let mut profile = RunProfile::new("bursty-active");
        for _ in 0..2000 {
            let mut c = EventCounts::new();
            // ~100 W of dynamic power during each 200 us kernel.
            c.instrs.add(Opcode::FFma32, 400_000_000);
            let k = KernelActivity::new(Time::from_micros(200.0), c, HiddenBehavior::regular());
            profile.push(Phase::Kernel(k));
            profile.push(Phase::Idle(Time::from_micros(200.0)));
        }
        let m = hw.measure_active(&profile);
        // The filter tracks the 50% duty-cycle mean, so the attributed
        // energy lands well below the kernels' true energy.
        assert!(
            m.sensor_error() < -0.10,
            "short kernels should be under-measured, got {:.2}%",
            m.sensor_error() * 100.0
        );
    }

    #[test]
    fn active_measurement_excludes_gaps_from_duration() {
        let hw = VirtualK40::new();
        let profile = RunProfile::new("gappy")
            .kernel(steady_kernel(30.0))
            .idle(Time::from_millis(100.0))
            .kernel(steady_kernel(30.0));
        let m = hw.measure_active(&profile);
        assert!((m.duration.millis() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn measure_idle_returns_idle_power() {
        let hw = VirtualK40::new();
        let p = hw.measure_idle(Time::from_secs(1.0));
        assert!((p.watts() - 62.0).abs() < 1.0, "got {p}");
    }

    #[test]
    fn measurement_is_deterministic() {
        let hw = VirtualK40::new();
        let profile = RunProfile::new("det").kernel(steady_kernel(100.0));
        let a = hw.measure(&profile);
        let b = hw.measure(&profile);
        assert_eq!(a.measured_energy, b.measured_energy);
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn different_run_names_get_different_noise() {
        let hw = VirtualK40::new();
        let k = steady_kernel(100.0);
        let a = hw.measure(&RunProfile::new("a").kernel(k.clone()));
        let b = hw.measure(&RunProfile::new("b").kernel(k));
        assert_eq!(a.true_energy, b.true_energy);
        assert_ne!(a.samples, b.samples);
    }

    #[test]
    fn ideal_sensor_on_window_aligned_run_is_near_exact() {
        let hw = VirtualK40::new().with_sensor(SensorConfig::ideal());
        // Duration an exact multiple of 15 ms, constant power: the sampled
        // integral equals the true integral.
        let profile = RunProfile::new("aligned").kernel(steady_kernel(1500.0));
        let m = hw.measure(&profile);
        assert!(
            m.sensor_error().abs() < 1e-6,
            "got {:.6}%",
            m.sensor_error() * 100.0
        );
    }

    #[test]
    fn sample_count_covers_duration() {
        let hw = VirtualK40::new();
        let profile = RunProfile::new("x").kernel(steady_kernel(100.0));
        let m = hw.measure(&profile);
        // 100 ms at 15 ms refresh -> 7 windows.
        assert_eq!(m.samples.len(), 7);
    }

    #[test]
    fn average_power_of_empty_measurement_is_zero() {
        let m = Measurement {
            name: "x".into(),
            measured_energy: Energy::ZERO,
            true_energy: Energy::ZERO,
            duration: Time::ZERO,
            samples: vec![],
        };
        assert_eq!(m.average_power(), Power::ZERO);
        assert_eq!(m.sensor_error(), 0.0);
    }

    #[test]
    fn display_mentions_error() {
        let hw = VirtualK40::new();
        let m = hw.measure(&RunProfile::new("d").kernel(steady_kernel(50.0)));
        assert!(m.to_string().contains("sensor error"));
    }
}
