//! The hidden ground-truth energy model of the virtual K40.
//!
//! This is the "real silicon" side of the study: it knows the true energy
//! of every event *plus* the effects no top-down model sees. GPUJoule never
//! reads these parameters — it only sees the power sensor — so recovering
//! Table Ib through the `microbench` pipeline is a genuine test of the
//! methodology.

use crate::profile::KernelActivity;
use common::units::{Energy, Power};
use isa::{Opcode, Transaction};

/// Ground-truth energy parameters of the virtual K40.
///
/// The per-event values intentionally coincide with Table Ib (that is what
/// a correct fitting pipeline should recover); the *additional* terms —
/// interaction energy, memory floor power, launch ramps, divergence issue
/// overhead — are the silicon-only effects that create the validation
/// error structure of Fig. 4.
#[derive(Debug, Clone, PartialEq)]
pub struct TruthModel {
    epi: [Energy; Opcode::COUNT],
    ept: [Energy; Transaction::COUNT],
    ep_stall: Energy,
    idle_power: Power,
    mem_floor_power: Power,
    launch_energy: Energy,
    interaction_fraction: f64,
}

impl TruthModel {
    /// The default virtual K40 parameterization.
    pub fn k40() -> Self {
        let nj = Energy::from_nanojoules;
        let mut epi = [Energy::ZERO; Opcode::COUNT];
        let set = |epi: &mut [Energy; Opcode::COUNT], op: Opcode, e: Energy| {
            epi[op.index()] = e;
        };
        set(&mut epi, Opcode::FAdd32, nj(0.06));
        set(&mut epi, Opcode::FMul32, nj(0.05));
        set(&mut epi, Opcode::FFma32, nj(0.05));
        set(&mut epi, Opcode::IAdd32, nj(0.07));
        set(&mut epi, Opcode::ISub32, nj(0.07));
        set(&mut epi, Opcode::And32, nj(0.06));
        set(&mut epi, Opcode::Or32, nj(0.06));
        set(&mut epi, Opcode::Xor32, nj(0.06));
        set(&mut epi, Opcode::FSin32, nj(0.10));
        set(&mut epi, Opcode::FCos32, nj(0.10));
        set(&mut epi, Opcode::IMul32, nj(0.13));
        set(&mut epi, Opcode::IMad32, nj(0.15));
        set(&mut epi, Opcode::FAdd64, nj(0.15));
        set(&mut epi, Opcode::FMul64, nj(0.13));
        set(&mut epi, Opcode::FFma64, nj(0.16));
        set(&mut epi, Opcode::FSqrt32, nj(0.02));
        set(&mut epi, Opcode::FLog232, nj(0.03));
        set(&mut epi, Opcode::FExp232, nj(0.08));
        set(&mut epi, Opcode::FRcp32, nj(0.31));
        set(&mut epi, Opcode::Mov32, nj(0.02));
        set(&mut epi, Opcode::Setp, nj(0.02));
        set(&mut epi, Opcode::Bra, nj(0.02));

        // The L2/DRAM true per-transaction energies sit *below* the
        // Table Ib figures: the memory-subsystem floor power (below) folds
        // into what a peak-rate microbenchmark measures, so a fitting
        // pipeline running at peak recovers approximately the published
        // numbers (3.96 / 7.82 nJ) — and *underestimates* applications
        // that keep the memory clocks up while moving little data, exactly
        // the RSBench/CoMD error mode of Fig. 4b.
        let mut ept = [Energy::ZERO; Transaction::COUNT];
        ept[Transaction::SharedToReg.index()] = nj(5.45);
        ept[Transaction::L1ToReg.index()] = nj(5.99);
        ept[Transaction::L2ToL1.index()] = nj(3.07);
        ept[Transaction::DramToL2.index()] = nj(5.02);

        TruthModel {
            epi,
            ept,
            ep_stall: Energy::from_nanojoules(0.30),
            idle_power: Power::from_watts(62.0),
            mem_floor_power: Power::from_watts(30.0),
            launch_energy: Energy::from_microjoules(400.0),
            interaction_fraction: 0.035,
        }
    }

    /// A hypothetical 16 nm Pascal-class board (P100-flavoured): lower
    /// per-operation energies from the process shrink, HBM2 memory, a
    /// lower idle floor. Used to exercise the paper's §IV-B3 claim that
    /// the methodology regenerates for any GPU.
    pub fn pascal_class() -> Self {
        let base = Self::k40();
        let nj = Energy::from_nanojoules;
        // 28 nm → 16 nm: roughly 0.6x energy per operation.
        let mut epi = base.epi;
        for e in &mut epi {
            *e = *e * 0.6;
        }
        let mut ept = [Energy::ZERO; Transaction::COUNT];
        ept[Transaction::SharedToReg.index()] = nj(3.30);
        ept[Transaction::L1ToReg.index()] = nj(3.65);
        // HBM2 and a denser L2: below the K40's per-transaction costs.
        ept[Transaction::L2ToL1.index()] = nj(2.05);
        ept[Transaction::DramToL2.index()] = nj(3.60);
        TruthModel {
            epi,
            ept,
            ep_stall: Energy::from_nanojoules(0.22),
            idle_power: Power::from_watts(31.0),
            mem_floor_power: Power::from_watts(24.0),
            launch_energy: Energy::from_microjoules(260.0),
            interaction_fraction: 0.03,
        }
    }

    /// Idle (baseline) board power — regulators, PDN, host I/O, leakage.
    pub fn idle_power(&self) -> Power {
        self.idle_power
    }

    /// Extra power burned while memory clocks are out of their low-power
    /// state (any kernel with L2/DRAM traffic). Counter-invisible.
    pub fn mem_floor_power(&self) -> Power {
        self.mem_floor_power
    }

    /// Fixed energy of one kernel launch (front-end ramp, driver work).
    pub fn launch_energy(&self) -> Energy {
        self.launch_energy
    }

    /// True per-instruction energy (what fitting should recover).
    pub fn true_epi(&self, op: Opcode) -> Energy {
        self.epi[op.index()]
    }

    /// True per-transaction energy (what fitting should recover).
    pub fn true_ept(&self, t: Transaction) -> Energy {
        self.ept[t.index()]
    }

    /// True per-lane-stall energy.
    pub fn true_ep_stall(&self) -> Energy {
        self.ep_stall
    }

    /// The dynamic (above-idle) energy one kernel really consumes,
    /// including every hidden effect but *excluding* idle power and the
    /// launch ramp (those are timeline-level, handled by the measurement
    /// layer).
    pub fn kernel_dynamic_energy(&self, k: &KernelActivity) -> Energy {
        // Issue energy: counters saw active-lane counts; silicon pays per
        // issued warp slot, so divergence inflates the true cost by 1/util.
        let mut compute = Energy::ZERO;
        for (op, n) in k.counts.instrs.iter() {
            compute += self.epi[op.index()] * n as f64;
        }
        compute = compute * (1.0 / k.behavior.lane_utilization);

        let mut movement = Energy::ZERO;
        for (t, n) in k.counts.txns.iter() {
            movement += self.ept[t.index()] * n as f64;
        }

        let stalls = self.ep_stall * k.counts.stall_cycles as f64;

        // Memory floor power: charged per unit time while sustained L2 or
        // DRAM traffic keeps the memory clocks out of their low-power
        // state. The gate saturates at a very low transaction rate —
        // trickling traffic (RSBench-style) pays the full floor, while a
        // cache-resident kernel whose only traffic is its warm-up pays
        // almost nothing.
        let floor = self.mem_floor_power * k.duration * self.floor_gate(k) * k.behavior.floor_scale;

        // Compute<->memory interaction: scheduling/MSHR cross-term
        // proportional to the weaker of the two activities.
        let interaction = Energy::from_joules(
            compute.joules().min(movement.joules())
                * self.interaction_fraction
                * k.behavior.interaction_scale,
        );

        compute + movement + stalls + floor + interaction
    }

    /// Fraction of the memory floor power a kernel pays: ramps linearly
    /// up to full at 2.0 L2/DRAM sector-transactions per nanosecond
    /// (~6% of the peak L2 rate) — sustained traffic keeps the memory
    /// clocks up, a one-time warm-up fill does not.
    pub fn floor_gate(&self, k: &KernelActivity) -> f64 {
        let mem_txns =
            k.counts.txns.get(Transaction::L2ToL1) + k.counts.txns.get(Transaction::DramToL2);
        if mem_txns == 0 {
            return 0.0;
        }
        let rate_per_ns = mem_txns as f64 / k.duration.nanos();
        (rate_per_ns / 2.0).min(1.0)
    }

    /// Average dynamic power during one kernel.
    pub fn kernel_dynamic_power(&self, k: &KernelActivity) -> Power {
        self.kernel_dynamic_energy(k) / k.duration
    }
}

impl Default for TruthModel {
    fn default() -> Self {
        Self::k40()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::HiddenBehavior;
    use common::units::Time;
    use isa::EventCounts;

    fn kernel(
        instrs: &[(Opcode, u64)],
        txns: &[(Transaction, u64)],
        ms: f64,
        behavior: HiddenBehavior,
    ) -> KernelActivity {
        let mut c = EventCounts::new();
        for &(op, n) in instrs {
            c.instrs.add(op, n);
        }
        for &(t, n) in txns {
            c.txns.add(t, n);
        }
        KernelActivity::new(Time::from_millis(ms), c, behavior)
    }

    #[test]
    fn pure_compute_kernel_matches_epi_sum() {
        let truth = TruthModel::k40();
        let k = kernel(
            &[(Opcode::FAdd32, 1_000_000)],
            &[],
            1.0,
            HiddenBehavior::regular(),
        );
        let e = truth.kernel_dynamic_energy(&k);
        // No memory traffic: no floor, no interaction, no divergence.
        assert!((e.joules() - 1_000_000.0 * 0.06e-9).abs() < 1e-15);
    }

    #[test]
    fn divergence_inflates_true_compute_energy() {
        let truth = TruthModel::k40();
        let full = kernel(
            &[(Opcode::FAdd32, 1_000_000)],
            &[],
            1.0,
            HiddenBehavior::regular(),
        );
        let div = kernel(
            &[(Opcode::FAdd32, 1_000_000)],
            &[],
            1.0,
            HiddenBehavior::with_lane_utilization(0.5),
        );
        let e_full = truth.kernel_dynamic_energy(&full);
        let e_div = truth.kernel_dynamic_energy(&div);
        assert!((e_div.joules() / e_full.joules() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn memory_floor_charged_per_time_when_memory_active() {
        let truth = TruthModel::k40();
        // Sustained traffic (4 sectors/ns over 1 ms vs 10 ms): full floor.
        let short = kernel(
            &[],
            &[(Transaction::DramToL2, 4_000_000)],
            1.0,
            HiddenBehavior::regular(),
        );
        let long = kernel(
            &[],
            &[(Transaction::DramToL2, 40_000_000)],
            10.0,
            HiddenBehavior::regular(),
        );
        assert_eq!(truth.floor_gate(&short), 1.0);
        assert_eq!(truth.floor_gate(&long), 1.0);
        let delta = truth.kernel_dynamic_energy(&long) - truth.kernel_dynamic_energy(&short);
        // 9x the traffic plus 9 ms more of floor power.
        let expected = truth.true_ept(Transaction::DramToL2) * 36_000_000.0
            + truth.mem_floor_power() * Time::from_millis(9.0);
        assert!((delta.joules() - expected.joules()).abs() < 1e-9);
    }

    #[test]
    fn floor_gate_ramps_with_traffic_rate() {
        let truth = TruthModel::k40();
        // 10 transactions over 1 ms: essentially idle memory clocks.
        let trickle = kernel(
            &[],
            &[(Transaction::DramToL2, 10)],
            1.0,
            HiddenBehavior::regular(),
        );
        assert!(truth.floor_gate(&trickle) < 1e-4);
        // Zero traffic: no gate at all.
        let none = kernel(
            &[(Opcode::FAdd32, 100)],
            &[],
            1.0,
            HiddenBehavior::regular(),
        );
        assert_eq!(truth.floor_gate(&none), 0.0);
        // Half-threshold traffic (1 sector/ns against the 2/ns knee):
        // half gate.
        let half = kernel(
            &[],
            &[(Transaction::L2ToL1, 1_000_000)],
            1.0,
            HiddenBehavior::regular(),
        );
        assert!((truth.floor_gate(&half) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn no_floor_power_without_memory_traffic() {
        let truth = TruthModel::k40();
        let short = kernel(
            &[(Opcode::FMul32, 100)],
            &[],
            1.0,
            HiddenBehavior::regular(),
        );
        let long = kernel(
            &[(Opcode::FMul32, 100)],
            &[],
            10.0,
            HiddenBehavior::regular(),
        );
        assert_eq!(
            truth.kernel_dynamic_energy(&short),
            truth.kernel_dynamic_energy(&long)
        );
    }

    #[test]
    fn interaction_term_appears_only_for_mixed_kernels() {
        let truth = TruthModel::k40();
        let compute_only = kernel(
            &[(Opcode::FAdd64, 1_000_000)],
            &[],
            1.0,
            HiddenBehavior::regular(),
        );
        let mixed = kernel(
            &[(Opcode::FAdd64, 1_000_000)],
            &[(Transaction::L1ToReg, 10_000)],
            1.0,
            HiddenBehavior::regular(),
        );
        let e_compute: f64 = 1_000_000.0 * 0.15e-9;
        let e_mem: f64 = 10_000.0 * 5.99e-9;
        let expected_interaction = e_compute.min(e_mem) * 0.035;
        let total = truth.kernel_dynamic_energy(&mixed).joules();
        assert!((total - (e_compute + e_mem + expected_interaction)).abs() < 1e-12);
        assert!((truth.kernel_dynamic_energy(&compute_only).joules() - e_compute).abs() < 1e-15);
    }

    #[test]
    fn stall_energy_charged() {
        let truth = TruthModel::k40();
        let mut c = EventCounts::new();
        c.stall_cycles = 1_000;
        let k = KernelActivity::new(Time::from_millis(1.0), c, HiddenBehavior::regular());
        let e = truth.kernel_dynamic_energy(&k);
        assert!((e.nanojoules() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn dynamic_power_is_energy_over_duration() {
        let truth = TruthModel::k40();
        let k = kernel(
            &[(Opcode::FFma32, 10_000_000)],
            &[],
            2.0,
            HiddenBehavior::regular(),
        );
        let p = truth.kernel_dynamic_power(&k);
        let e = truth.kernel_dynamic_energy(&k);
        assert!((p.watts() - e.joules() / 2e-3).abs() < 1e-12);
    }

    #[test]
    fn true_tables_match_paper_values() {
        let truth = TruthModel::k40();
        assert!((truth.true_epi(Opcode::FRcp32).nanojoules() - 0.31).abs() < 1e-12);
        // True DRAM EPT sits below the Table Ib 7.82 nJ by the floor-power
        // share a peak-rate fit absorbs.
        assert!((truth.true_ept(Transaction::DramToL2).nanojoules() - 5.02).abs() < 1e-12);
        assert!(truth.true_ept(Transaction::DramToL2).nanojoules() < 7.82);
        assert!((truth.idle_power().watts() - 62.0).abs() < 1e-12);
    }
}
