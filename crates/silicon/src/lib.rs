#![deny(missing_docs)]

//! A *virtual Tesla K40*: the ground-truth hardware stand-in for the
//! GPUJoule fitting and validation experiments.
//!
//! The paper fits GPUJoule by running microbenchmarks on a real K40 and
//! reading its on-board power sensor through NVML (§IV). We have no
//! silicon, so this crate provides the closest synthetic equivalent: an
//! analytic hardware energy model with **hidden effects the top-down model
//! deliberately does not know about**, measured through an NVML-like
//! sensor with a 15 ms refresh period.
//!
//! The hidden effects are chosen to reproduce the *error structure* the
//! paper reports in Fig. 4:
//!
//! * **instruction-interaction energy** when compute and memory are both
//!   active (small, a few percent — the ±2.5%/−6% band of Fig. 4a);
//! * **memory-subsystem floor power** while any DRAM/L2 traffic keeps the
//!   memory clocks up, charged per unit time, not per transaction — this
//!   makes the model *underestimate* low-memory-utilization apps the way
//!   the paper observes for RSBench and CoMD;
//! * **warp-issue overhead under control divergence** — counters report
//!   active-lane instruction counts, silicon pays per issued warp, so
//!   divergent apps are underestimated (§IV-A's stated limitation);
//! * **kernel-launch ramp energy and host gaps**, which combined with the
//!   15 ms sensor resolution distorts measurements of apps with hundreds
//!   of sub-millisecond kernels (the BFS/MiniAMR outliers of Fig. 4b).
//!
//! # Examples
//!
//! ```
//! use silicon::{HiddenBehavior, KernelActivity, RunProfile, VirtualK40};
//! use isa::{EventCounts, Opcode};
//! use common::units::Time;
//!
//! let hw = VirtualK40::new();
//! let mut counts = EventCounts::new();
//! counts.instrs.add(Opcode::FFma32, 50_000_000);
//! let kernel = KernelActivity::new(Time::from_millis(40.0), counts, HiddenBehavior::default());
//! let profile = RunProfile::new("ffma-loop").kernel(kernel);
//! let m = hw.measure(&profile);
//! assert!(m.measured_energy.joules() > 0.0);
//! ```

pub mod measure;
pub mod profile;
pub mod sensor;
pub mod truth;

pub use measure::{Measurement, VirtualK40};
pub use profile::{HiddenBehavior, KernelActivity, Phase, RunProfile};
pub use sensor::{arm_sensor_faults, armed_sensor_faults, PowerSensor, SensorConfig, SensorFaults};
pub use truth::TruthModel;
