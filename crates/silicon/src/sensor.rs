//! The NVML-like on-board power sensor.
//!
//! The K40's board sensor refreshes roughly every 15 ms and reports a
//! low-pass-filtered board power (§IV-B2 and [Guerreiro et al.]). The
//! paper attributes its largest validation outliers (BFS, MiniAMR) to
//! exactly this: kernels hundreds of microseconds long simply cannot be
//! resolved. This module models the sensor as a first-order low-pass
//! filter sampled at the refresh period, with mild quantization and
//! reading noise.

use common::units::{Power, Time};
use std::sync::Mutex;

/// Injected sensor failure modes: NVML driver glitches (NaN readings)
/// and stale-register dropouts (the previous reading repeats).
///
/// Like the noise generator, the fault stream is seeded and
/// deterministic — the same plan produces the same glitch pattern on
/// every run, so recovery paths are testable in CI. The default plan
/// injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SensorFaults {
    /// Probability per reading of returning NaN.
    pub nan_rate: f64,
    /// Probability per reading of repeating the previous reading.
    pub dropout_rate: f64,
    /// Seed for the fault stream (independent of the noise stream).
    pub seed: u64,
}

impl SensorFaults {
    /// Whether this plan can ever inject anything.
    pub fn is_noop(&self) -> bool {
        self.nan_rate <= 0.0 && self.dropout_rate <= 0.0
    }
}

/// Process-wide armed sensor faults, merged into every sensor built
/// while armed. The `xp` driver arms this from `--faults` because the
/// fitting pipeline constructs its sensors many layers down; tests that
/// need isolation should set [`SensorConfig::faults`] directly instead.
static ARMED_FAULTS: Mutex<Option<SensorFaults>> = Mutex::new(None);

/// Arms process-wide sensor faults (pass `None` to disarm).
pub fn arm_sensor_faults(faults: Option<SensorFaults>) {
    *ARMED_FAULTS.lock().unwrap() = faults.filter(|f| !f.is_noop());
}

/// The currently armed process-wide sensor faults, if any.
pub fn armed_sensor_faults() -> Option<SensorFaults> {
    *ARMED_FAULTS.lock().unwrap()
}

/// Sensor characteristics.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorConfig {
    /// Interval between successive readings (the paper quotes 15 ms).
    pub refresh_period: Time,
    /// Time constant of the internal low-pass filter.
    pub filter_tau: Time,
    /// Standard deviation of per-reading noise, in watts.
    pub noise_watts: f64,
    /// Reading quantization step, in watts (NVML reports milliwatt fields
    /// but the underlying ADC is far coarser).
    pub quantum_watts: f64,
    /// Seed for the deterministic noise generator.
    pub seed: u64,
    /// Injected failure modes (none by default; process-wide armed
    /// faults override this when set).
    pub faults: SensorFaults,
}

impl SensorConfig {
    /// The K40 board sensor: 15 ms refresh, ~8 ms filter, 0.25 W steps.
    pub fn k40() -> Self {
        SensorConfig {
            refresh_period: Time::from_millis(15.0),
            filter_tau: Time::from_millis(8.0),
            noise_watts: 0.4,
            quantum_watts: 0.25,
            seed: 0x004b_3430,
            faults: SensorFaults::default(),
        }
    }

    /// An idealized sensor: instantaneous, noiseless, unquantized.
    /// Useful in tests to separate methodology error from sensor error.
    pub fn ideal() -> Self {
        SensorConfig {
            refresh_period: Time::from_millis(15.0),
            filter_tau: Time::from_nanos(1.0),
            noise_watts: 0.0,
            quantum_watts: 0.0,
            seed: 0,
            faults: SensorFaults::default(),
        }
    }
}

impl Default for SensorConfig {
    fn default() -> Self {
        Self::k40()
    }
}

/// A stateful power sensor tracking a piecewise-constant true power input.
///
/// Drive it with [`PowerSensor::advance`] for each constant-power segment
/// of the timeline and collect readings with [`PowerSensor::read`].
///
/// # Examples
///
/// ```
/// use silicon::{PowerSensor, SensorConfig};
/// use common::units::{Power, Time};
///
/// let mut s = PowerSensor::new(SensorConfig::ideal(), Power::from_watts(60.0));
/// s.advance(Power::from_watts(200.0), Time::from_millis(100.0));
/// let r = s.read();
/// assert!((r.watts() - 200.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct PowerSensor {
    config: SensorConfig,
    faults: SensorFaults,
    filtered: f64,
    rng_state: u64,
    fault_rng: u64,
    /// Last value returned by [`PowerSensor::read`] (what a dropout
    /// repeats); starts at the settled initial power.
    last_reading: f64,
}

impl PowerSensor {
    /// Creates a sensor settled at `initial` power (e.g. idle power).
    ///
    /// Process-wide faults armed via [`arm_sensor_faults`] take
    /// precedence over [`SensorConfig::faults`].
    pub fn new(config: SensorConfig, initial: Power) -> Self {
        let rng_state = config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let faults = armed_sensor_faults().unwrap_or(config.faults);
        let fault_rng = (config.seed ^ faults.seed).wrapping_mul(0xD129_0B2C_2F6C_64A5) | 1;
        PowerSensor {
            config,
            faults,
            filtered: initial.watts(),
            rng_state,
            fault_rng,
            last_reading: initial.watts(),
        }
    }

    /// The sensor configuration.
    pub fn config(&self) -> &SensorConfig {
        &self.config
    }

    /// Advances the filter through a segment of constant true power.
    ///
    /// The first-order low-pass response to a constant input has the exact
    /// solution `f(t+dt) = u + (f(t) − u)·e^(−dt/τ)`, so segments of any
    /// length are integrated without time-stepping error.
    pub fn advance(&mut self, true_power: Power, dt: Time) {
        if !dt.is_positive() {
            return;
        }
        let u = true_power.watts();
        let alpha = (-dt.secs() / self.config.filter_tau.secs()).exp();
        self.filtered = u + (self.filtered - u) * alpha;
    }

    /// Takes one reading: the filtered value plus noise, quantized, clamped
    /// at zero. Injected faults apply last: a dropout repeats the previous
    /// reading, a NaN glitch returns `NaN` (measurement protocols must
    /// tolerate both — see `measure`).
    pub fn read(&mut self) -> Power {
        let noisy = self.filtered + self.noise();
        let q = self.config.quantum_watts;
        let quantized = if q > 0.0 {
            (noisy / q).round() * q
        } else {
            noisy
        };
        let clean = quantized.max(0.0);
        let value = match self.roll_fault() {
            SensorFaultKind::Nan => f64::NAN,
            SensorFaultKind::Dropout => self.last_reading,
            SensorFaultKind::None => clean,
        };
        if value.is_finite() {
            self.last_reading = value;
        }
        Power::from_watts(value)
    }

    /// Draws from the fault stream: which fault (if any) hits this
    /// reading. Advances the fault RNG exactly once per reading so the
    /// glitch pattern is independent of the noise settings.
    fn roll_fault(&mut self) -> SensorFaultKind {
        if self.faults.is_noop() {
            return SensorFaultKind::None;
        }
        let mut x = self.fault_rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.fault_rng = x;
        let u = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.faults.nan_rate {
            SensorFaultKind::Nan
        } else if u < self.faults.nan_rate + self.faults.dropout_rate {
            SensorFaultKind::Dropout
        } else {
            SensorFaultKind::None
        }
    }

    /// Gaussian-ish noise via the sum of three uniforms (Irwin–Hall),
    /// scaled to the configured standard deviation. Deterministic per
    /// seed; implemented inline to keep this crate dependency-free.
    fn noise(&mut self) -> f64 {
        if self.config.noise_watts == 0.0 {
            return 0.0;
        }
        let mut sum = 0.0;
        for _ in 0..3 {
            // xorshift64*
            let mut x = self.rng_state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.rng_state = x;
            let u = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
            sum += u - 0.5;
        }
        // Var(sum of 3 uniforms(-0.5,0.5)) = 3/12 = 0.25 → sd 0.5.
        sum * 2.0 * self.config.noise_watts
    }
}

enum SensorFaultKind {
    None,
    Nan,
    Dropout,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_settles_to_constant_input() {
        let mut s = PowerSensor::new(SensorConfig::ideal(), Power::from_watts(62.0));
        s.advance(Power::from_watts(180.0), Time::from_secs(1.0));
        assert!((s.read().watts() - 180.0).abs() < 1e-6);
    }

    #[test]
    fn filter_lags_short_bursts() {
        let cfg = SensorConfig {
            noise_watts: 0.0,
            quantum_watts: 0.0,
            ..SensorConfig::k40()
        };
        let mut s = PowerSensor::new(cfg, Power::from_watts(62.0));
        // A 1 ms burst at 200 W against an 8 ms time constant barely moves
        // the reading.
        s.advance(Power::from_watts(200.0), Time::from_millis(1.0));
        let r = s.read().watts();
        assert!(r > 62.0 && r < 62.0 + 0.2 * (200.0 - 62.0), "reading {r}");
    }

    #[test]
    fn exact_exponential_response() {
        let cfg = SensorConfig {
            noise_watts: 0.0,
            quantum_watts: 0.0,
            ..SensorConfig::k40()
        };
        let mut s = PowerSensor::new(cfg.clone(), Power::from_watts(0.0));
        s.advance(Power::from_watts(100.0), cfg.filter_tau);
        // After exactly one time constant: 1 - 1/e of the step.
        let expected = 100.0 * (1.0 - (-1.0f64).exp());
        assert!((s.read().watts() - expected).abs() < 1e-9);
    }

    #[test]
    fn segmented_advance_equals_single_advance() {
        let cfg = SensorConfig {
            noise_watts: 0.0,
            quantum_watts: 0.0,
            ..SensorConfig::k40()
        };
        let mut a = PowerSensor::new(cfg.clone(), Power::from_watts(50.0));
        let mut b = PowerSensor::new(cfg, Power::from_watts(50.0));
        a.advance(Power::from_watts(120.0), Time::from_millis(10.0));
        for _ in 0..10 {
            b.advance(Power::from_watts(120.0), Time::from_millis(1.0));
        }
        assert!((a.read().watts() - b.read().watts()).abs() < 1e-9);
    }

    #[test]
    fn quantization_rounds_to_step() {
        let cfg = SensorConfig {
            noise_watts: 0.0,
            quantum_watts: 0.25,
            ..SensorConfig::k40()
        };
        let mut s = PowerSensor::new(cfg, Power::from_watts(62.13));
        let r = s.read().watts();
        assert!((r - 62.25).abs() < 1e-9 || (r - 62.0).abs() < 1e-9);
        assert_eq!((r / 0.25).fract(), 0.0);
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let cfg = SensorConfig::k40();
        let mut a = PowerSensor::new(cfg.clone(), Power::from_watts(62.0));
        let mut b = PowerSensor::new(cfg, Power::from_watts(62.0));
        for _ in 0..5 {
            assert_eq!(a.read(), b.read());
        }
    }

    #[test]
    fn noise_magnitude_is_bounded() {
        let mut s = PowerSensor::new(SensorConfig::k40(), Power::from_watts(62.0));
        for _ in 0..1000 {
            let r = s.read().watts();
            // 3-uniform noise is hard-bounded at 3 sd.
            assert!((r - 62.0).abs() <= 3.0 * 0.4 + 0.25 + 1e-9);
        }
    }

    #[test]
    fn readings_never_negative() {
        let mut s = PowerSensor::new(SensorConfig::k40(), Power::from_watts(0.0));
        for _ in 0..100 {
            assert!(s.read().watts() >= 0.0);
        }
    }

    #[test]
    fn nan_faults_poison_single_readings_only() {
        let cfg = SensorConfig {
            faults: SensorFaults {
                nan_rate: 0.5,
                dropout_rate: 0.0,
                seed: 11,
            },
            ..SensorConfig::k40()
        };
        let mut s = PowerSensor::new(cfg, Power::from_watts(62.0));
        let readings: Vec<f64> = (0..200).map(|_| s.read().watts()).collect();
        let nans = readings.iter().filter(|w| w.is_nan()).count();
        assert!((50..150).contains(&nans), "got {nans} NaNs");
        // Finite readings between glitches stay sane.
        for w in readings.iter().filter(|w| w.is_finite()) {
            assert!((*w - 62.0).abs() < 5.0, "reading {w}");
        }
    }

    #[test]
    fn dropouts_repeat_the_previous_reading() {
        let cfg = SensorConfig {
            noise_watts: 0.0,
            quantum_watts: 0.0,
            faults: SensorFaults {
                nan_rate: 0.0,
                dropout_rate: 1.0,
                seed: 1,
            },
            ..SensorConfig::k40()
        };
        let mut s = PowerSensor::new(cfg, Power::from_watts(62.0));
        // Every reading drops out: the settled initial value repeats
        // forever, no matter what the filter tracks.
        s.advance(Power::from_watts(200.0), Time::from_secs(1.0));
        assert_eq!(s.read().watts(), 62.0);
        assert_eq!(s.read().watts(), 62.0);
    }

    #[test]
    fn fault_stream_is_deterministic_per_seed() {
        let cfg = SensorConfig {
            faults: SensorFaults {
                nan_rate: 0.3,
                dropout_rate: 0.2,
                seed: 77,
            },
            ..SensorConfig::k40()
        };
        let mut a = PowerSensor::new(cfg.clone(), Power::from_watts(62.0));
        let mut b = PowerSensor::new(cfg, Power::from_watts(62.0));
        for _ in 0..50 {
            let (ra, rb) = (a.read().watts(), b.read().watts());
            assert!(ra == rb || (ra.is_nan() && rb.is_nan()));
        }
    }

    #[test]
    fn zero_dt_advance_is_noop() {
        let cfg = SensorConfig {
            noise_watts: 0.0,
            quantum_watts: 0.0,
            ..SensorConfig::k40()
        };
        let mut s = PowerSensor::new(cfg, Power::from_watts(62.0));
        s.advance(Power::from_watts(500.0), Time::ZERO);
        assert!((s.read().watts() - 62.0).abs() < 1e-9);
    }
}
