//! Run profiles: the timeline a measurement run executes on the virtual
//! hardware.
//!
//! A [`RunProfile`] is a sequence of kernel phases and host-side idle gaps.
//! Each kernel phase carries the event counts a profiler would report
//! (instructions, transactions, stalls) plus [`HiddenBehavior`] knobs that
//! only the silicon knows about — the things hardware counters do *not*
//! expose, which is where model error comes from.

use common::units::Time;
use isa::EventCounts;
use std::fmt;

/// Per-kernel behavior visible to the silicon but not to performance
/// counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HiddenBehavior {
    /// Average fraction of active lanes per issued warp, in `(0, 1]`.
    ///
    /// Counters report active-lane (thread-level) instruction counts; the
    /// hardware pays issue energy per warp slot. A value of `0.6` means
    /// 40% of issue energy is invisible to the counters (control
    /// divergence — the limitation §IV-A concedes).
    pub lane_utilization: f64,
    /// Scales the compute↔memory interaction energy for this kernel, in
    /// `[0, 1]`; `1.0` applies the full cross-term.
    pub interaction_scale: f64,
    /// Scales the memory-subsystem floor power for this kernel.
    ///
    /// Applications that keep large lookup structures resident (RSBench's
    /// cross-section tables, CoMD's neighbor lists) hold more of the
    /// memory subsystem awake than their transaction counts suggest; a
    /// top-down model fitted at microbenchmark rates cannot see this.
    pub floor_scale: f64,
}

impl HiddenBehavior {
    /// Full-warp, full-interaction behavior (regular dense kernels).
    pub fn regular() -> Self {
        HiddenBehavior {
            lane_utilization: 1.0,
            interaction_scale: 1.0,
            floor_scale: 1.0,
        }
    }

    /// Behavior with the given active-lane fraction.
    ///
    /// # Panics
    ///
    /// Panics if `lane_utilization` is not within `(0, 1]`.
    pub fn with_lane_utilization(lane_utilization: f64) -> Self {
        assert!(
            lane_utilization > 0.0 && lane_utilization <= 1.0,
            "lane utilization must be in (0, 1], got {lane_utilization}"
        );
        HiddenBehavior {
            lane_utilization,
            ..Self::regular()
        }
    }
}

impl Default for HiddenBehavior {
    fn default() -> Self {
        Self::regular()
    }
}

/// One kernel execution on the timeline: how long it ran, what the
/// counters saw, and how it really behaved.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelActivity {
    /// Kernel wall-clock duration.
    pub duration: Time,
    /// Counter-visible event counts for this kernel. The `elapsed` field
    /// inside is ignored; `duration` is authoritative.
    pub counts: EventCounts,
    /// Counter-invisible behavior.
    pub behavior: HiddenBehavior,
}

impl KernelActivity {
    /// Creates a kernel activity.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is not strictly positive.
    pub fn new(duration: Time, counts: EventCounts, behavior: HiddenBehavior) -> Self {
        assert!(duration.is_positive(), "kernel duration must be positive");
        KernelActivity {
            duration,
            counts,
            behavior,
        }
    }

    /// `true` if the kernel generates any DRAM or L2 traffic (which keeps
    /// the memory clocks out of their low-power state).
    pub fn touches_memory(&self) -> bool {
        use isa::Transaction;
        self.counts.txns.get(Transaction::DramToL2) > 0
            || self.counts.txns.get(Transaction::L2ToL1) > 0
    }
}

/// One phase of a run: a kernel, or a host-side gap at idle power.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // phases are built once per timeline, not hot
pub enum Phase {
    /// A kernel executing on the GPU.
    Kernel(KernelActivity),
    /// The GPU sitting idle (host work, launch latency) for the given
    /// duration.
    Idle(Time),
}

impl Phase {
    /// Duration of this phase.
    pub fn duration(&self) -> Time {
        match self {
            Phase::Kernel(k) => k.duration,
            Phase::Idle(t) => *t,
        }
    }
}

/// A named measurement run: an ordered sequence of phases.
///
/// # Examples
///
/// ```
/// use silicon::{HiddenBehavior, KernelActivity, RunProfile};
/// use isa::EventCounts;
/// use common::units::Time;
///
/// let k = KernelActivity::new(Time::from_millis(2.0), EventCounts::new(),
///                             HiddenBehavior::default());
/// let p = RunProfile::new("bfs")
///     .kernel(k.clone())
///     .idle(Time::from_micros(50.0))
///     .kernel(k);
/// assert_eq!(p.phases().len(), 3);
/// assert!((p.total_duration().millis() - 4.05).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunProfile {
    name: String,
    phases: Vec<Phase>,
}

impl RunProfile {
    /// An empty profile with a name.
    pub fn new(name: impl Into<String>) -> Self {
        RunProfile {
            name: name.into(),
            phases: Vec::new(),
        }
    }

    /// Appends a kernel phase.
    pub fn kernel(mut self, k: KernelActivity) -> Self {
        self.phases.push(Phase::Kernel(k));
        self
    }

    /// Appends an idle gap.
    pub fn idle(mut self, t: Time) -> Self {
        if t.is_positive() {
            self.phases.push(Phase::Idle(t));
        }
        self
    }

    /// Appends an arbitrary phase.
    pub fn push(&mut self, phase: Phase) {
        self.phases.push(phase);
    }

    /// The run's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The phases in execution order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total wall-clock duration of the run.
    pub fn total_duration(&self) -> Time {
        self.phases.iter().map(Phase::duration).sum()
    }

    /// Number of kernel launches in the run.
    pub fn launch_count(&self) -> usize {
        self.phases
            .iter()
            .filter(|p| matches!(p, Phase::Kernel(_)))
            .count()
    }

    /// Aggregated counter-visible event counts across all kernels, with
    /// `elapsed` set to the total run duration (what a profiler would
    /// report for the whole app).
    pub fn aggregate_counts(&self) -> EventCounts {
        let mut total = EventCounts::new();
        for phase in &self.phases {
            if let Phase::Kernel(k) = phase {
                let mut counts = k.counts.clone();
                counts.elapsed = Time::ZERO;
                total.merge_sequential(&counts);
            }
        }
        total.elapsed = self.total_duration();
        total
    }
}

impl fmt::Display for RunProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} launches over {}",
            self.name,
            self.launch_count(),
            self.total_duration()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::{Opcode, Transaction};

    fn kernel_ms(ms: f64) -> KernelActivity {
        let mut c = EventCounts::new();
        c.instrs.add(Opcode::FAdd32, 100);
        KernelActivity::new(Time::from_millis(ms), c, HiddenBehavior::default())
    }

    #[test]
    fn profile_accumulates_phases() {
        let p = RunProfile::new("x")
            .kernel(kernel_ms(1.0))
            .idle(Time::from_millis(0.5))
            .kernel(kernel_ms(2.0));
        assert_eq!(p.launch_count(), 2);
        assert_eq!(p.phases().len(), 3);
        assert!((p.total_duration().millis() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn zero_idle_gap_is_dropped() {
        let p = RunProfile::new("x").idle(Time::ZERO);
        assert!(p.phases().is_empty());
    }

    #[test]
    fn aggregate_counts_sums_kernels_and_sets_elapsed() {
        let p = RunProfile::new("x")
            .kernel(kernel_ms(1.0))
            .idle(Time::from_millis(1.0))
            .kernel(kernel_ms(1.0));
        let agg = p.aggregate_counts();
        assert_eq!(agg.instrs.get(Opcode::FAdd32), 200);
        assert!((agg.elapsed.millis() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn touches_memory_requires_l2_or_dram_traffic() {
        let mut c = EventCounts::new();
        c.txns.add(Transaction::L1ToReg, 100);
        let k = KernelActivity::new(Time::from_millis(1.0), c.clone(), HiddenBehavior::default());
        assert!(!k.touches_memory());
        c.txns.add(Transaction::DramToL2, 1);
        let k = KernelActivity::new(Time::from_millis(1.0), c, HiddenBehavior::default());
        assert!(k.touches_memory());
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_kernel_panics() {
        let _ = KernelActivity::new(Time::ZERO, EventCounts::new(), HiddenBehavior::default());
    }

    #[test]
    #[should_panic(expected = "lane utilization")]
    fn bad_lane_utilization_panics() {
        let _ = HiddenBehavior::with_lane_utilization(0.0);
    }

    #[test]
    fn display_summarizes() {
        let p = RunProfile::new("bfs").kernel(kernel_ms(1.0));
        let s = p.to_string();
        assert!(s.contains("bfs"));
        assert!(s.contains("1 launches"));
    }
}
