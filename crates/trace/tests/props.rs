//! Property tests for the trace crate: histogram bucketing invariants
//! (monotone buckets, quantile bounds, merge associativity) and a
//! session round trip — exported Chrome-trace JSON must re-parse under
//! `common::json`'s strict parser with balanced begin/end events.

use common::json::Json;
use proptest::prelude::*;
use trace::{bucket_lower, bucket_of, bucket_upper, Histogram, HistogramSnapshot, NUM_BUCKETS};

proptest! {
    #[test]
    fn bucket_assignment_is_monotone_and_within_bounds(
        values in prop::collection::vec(0_u64..u64::MAX, 1..64),
    ) {
        let mut sorted = values.clone();
        sorted.sort_unstable();
        // Larger values never land in a smaller bucket.
        for pair in sorted.windows(2) {
            prop_assert!(bucket_of(pair[0]) <= bucket_of(pair[1]));
        }
        // Every value lies inside its bucket's [lower, upper] range.
        for &v in &values {
            let i = bucket_of(v);
            prop_assert!(i < NUM_BUCKETS);
            prop_assert!(bucket_lower(i) <= v && v <= bucket_upper(i));
        }
    }

    #[test]
    fn quantiles_never_undershoot_and_overshoot_at_most_2x(
        values in prop::collection::vec(1_u64..1_000_000_000, 1..100),
        q in 0.0_f64..1.0,
    ) {
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let snapshot = hist.snapshot();
        prop_assert_eq!(snapshot.count, values.len() as u64);

        // True quantile with the same rank rule the histogram uses:
        // smallest value whose cumulative count reaches ceil(q * n).
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];

        let estimate = snapshot.quantile(q);
        prop_assert!(estimate >= truth, "estimate {estimate} < true quantile {truth}");
        prop_assert!(estimate <= truth.saturating_mul(2), "estimate {estimate} > 2x {truth}");
        prop_assert!(estimate <= snapshot.max);
    }

    #[test]
    fn merge_is_associative_and_commutative(
        a in prop::collection::vec(0_u64..1_000_000, 0..40),
        b in prop::collection::vec(0_u64..1_000_000, 0..40),
        c in prop::collection::vec(0_u64..1_000_000, 0..40),
    ) {
        let snap = |values: &[u64]| {
            let mut s = HistogramSnapshot::default();
            for &v in values {
                s.record(v);
            }
            s
        };
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));
        prop_assert_eq!(sa.merge(&sb).merge(&sc), sa.merge(&sb.merge(&sc)));
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
        // Merging matches recording the concatenated sample set.
        let mut all = a.clone();
        all.extend(&b);
        prop_assert_eq!(sa.merge(&sb), snap(&all));
    }

    #[test]
    fn exported_chrome_trace_round_trips_with_balanced_events(
        span_counts in prop::collection::vec(1_usize..6, 1..8),
    ) {
        // Serialized across proptest cases by the crate-global session
        // lock; nested spans per case, varying depth.
        let session = trace::session(trace::TraceConfig::default());
        for (i, &depth) in span_counts.iter().enumerate() {
            let spans: Vec<trace::Span> = (0..depth)
                .map(|d| trace::span(format!("prop.case{i}.depth{d}")))
                .collect();
            trace::count("prop.spans", depth as u64);
            drop(spans);
        }
        let snapshot = session.finish();
        let rendered = trace::export::chrome_trace(&snapshot).render();

        // Strict re-parse, then check begin/end balance per name.
        let parsed = Json::parse(&rendered).expect("exported trace must re-parse strictly");
        let events = parsed.as_array().unwrap();
        let mut balance: Vec<(String, i64)> = Vec::new();
        for e in events {
            let ph = e.get("ph").and_then(Json::as_str).unwrap();
            if ph == "M" {
                continue;
            }
            if ph == "C" {
                let value = e.get("args").and_then(|a| a.get("value"));
                prop_assert!(value.and_then(Json::as_f64).is_some());
                continue;
            }
            prop_assert!(ph == "B" || ph == "E");
            let name = e.get("name").and_then(Json::as_str).unwrap().to_string();
            prop_assert!(e.get("ts").and_then(Json::as_f64).is_some());
            prop_assert!(e.get("pid").and_then(Json::as_f64).is_some());
            prop_assert!(e.get("tid").and_then(Json::as_f64).is_some());
            let delta = if ph == "B" { 1 } else { -1 };
            match balance.iter_mut().find(|(n, _)| *n == name) {
                Some((_, d)) => *d += delta,
                None => balance.push((name, delta)),
            }
        }
        let total: usize = span_counts.iter().sum();
        prop_assert_eq!(balance.len(), total, "one span name per (case, depth)");
        for (name, delta) in &balance {
            prop_assert_eq!(*delta, 0, "unbalanced span {}", name);
        }
        prop_assert_eq!(snapshot.counter("prop.spans"), Some(total as u64));
    }
}
