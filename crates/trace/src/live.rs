//! Always-on telemetry: process-lifetime counters and histograms with
//! windowed rollups.
//!
//! The session machinery in the crate root is built for one-shot runs:
//! a [`crate::Session`] resets everything, records, and tears down. A
//! long-running daemon needs the opposite — metrics that record from
//! process start, never reset, and can answer "what happened over the
//! last minute" at any instant. This module is that mode, and the two
//! coexist:
//!
//! * [`counter`] / [`histogram`] return cheap clonable handles to named
//!   process-wide cells. A handle [`LiveCounter::add`] is a single
//!   relaxed `fetch_add` — no lock, no hash lookup, no time source — so
//!   instruments held in a server's hot path stay inside the same < 2%
//!   overhead budget the disabled session path has (the `bench` crate's
//!   `trace` bench holds both).
//! * [`tick`] advances two fixed rings of *cumulative* snapshots
//!   ([`RING_CAP`] each at 1 s and 1 min spacing). [`window`] diffs the
//!   current cumulative state against the ring entry whose age best
//!   matches the asked span — counter deltas for rates, delta
//!   histograms (via [`HistogramSnapshot::diff`], the inverse of the
//!   associative merge) for recent p50/p99. Keeping cumulative
//!   snapshots rather than per-tick deltas makes any window a single
//!   subtraction instead of a merge loop; the two are equivalent
//!   because the merge is associative.
//! * Sessions fold the live world in: [`crate::session`] captures a
//!   live baseline and [`crate::Session::finish`] merges the live delta
//!   into the session snapshot, so instruments that moved to the
//!   always-on registry still show up — exactly once — in `--trace`
//!   summaries.
//!
//! [`ScopedCounter`] bridges instance-exact statistics (a server's
//! `stats` response must count *its own* requests even when several
//! servers share the process, as tests do) with process-wide telemetry:
//! adds land in both a private cell and the named global cell.

use crate::hist::{Histogram, HistogramSnapshot};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Entries kept per rollup ring: just over a minute of 1 s history and
/// just over an hour of 1 min history.
pub const RING_CAP: usize = 64;

struct Ring {
    spacing_nanos: u64,
    snaps: VecDeque<LiveSnapshot>,
}

impl Ring {
    fn new(spacing: Duration) -> Ring {
        Ring {
            spacing_nanos: spacing.as_nanos() as u64,
            snaps: VecDeque::new(),
        }
    }

    /// Appends `now` if the newest entry is at least one spacing old.
    fn advance(&mut self, now: &LiveSnapshot) {
        let due = self
            .snaps
            .back()
            .is_none_or(|last| now.at_nanos.saturating_sub(last.at_nanos) >= self.spacing_nanos);
        if due {
            if self.snaps.len() >= RING_CAP {
                self.snaps.pop_front();
            }
            self.snaps.push_back(now.clone());
        }
    }
}

struct Rings {
    fine: Ring,
    coarse: Ring,
}

impl Rings {
    /// The retained snapshot whose age best matches `target` (absolute
    /// nanos since the trace epoch): minimal `|at - target|` across both
    /// rings, ties to the older entry.
    fn best_for(&self, target: u64) -> Option<&LiveSnapshot> {
        self.fine
            .snaps
            .iter()
            .chain(self.coarse.snaps.iter())
            .min_by_key(|s| (s.at_nanos.abs_diff(target), s.at_nanos))
    }
}

struct Registry {
    counters: Mutex<HashMap<String, Arc<AtomicU64>>>,
    hists: Mutex<HashMap<String, Arc<Histogram>>>,
    rings: Mutex<Rings>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(HashMap::new()),
        hists: Mutex::new(HashMap::new()),
        rings: Mutex::new(Rings {
            fine: Ring::new(Duration::from_secs(1)),
            coarse: Ring::new(Duration::from_secs(60)),
        }),
    })
}

/// A handle to a named process-wide counter that records from process
/// start and never resets. Clones share the cell; obtaining a handle
/// takes the registry lock once, after which [`add`](Self::add) is a
/// single relaxed `fetch_add`.
#[derive(Debug, Clone)]
pub struct LiveCounter {
    cell: Arc<AtomicU64>,
}

impl LiveCounter {
    /// Adds `delta` to the counter.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// The cumulative value since process start.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A handle to a named process-wide latency histogram that records from
/// process start and never resets. Clones share the cells; a
/// [`record`](Self::record) is the two relaxed increments (plus a max
/// check) of [`Histogram::record`].
#[derive(Debug, Clone)]
pub struct LiveHistogram {
    hist: Arc<Histogram>,
}

impl LiveHistogram {
    /// Records one duration.
    #[inline]
    pub fn record(&self, duration: Duration) {
        self.hist.record(duration.as_nanos() as u64);
    }

    /// Records one duration given in nanoseconds.
    #[inline]
    pub fn record_nanos(&self, nanos: u64) {
        self.hist.record(nanos);
    }

    /// A point-in-time copy of the cumulative distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.hist.snapshot()
    }
}

/// A per-instance view over a shared global counter: every add lands in
/// both a private cell and the named process-wide cell, so one
/// instrument serves instance-exact statistics ([`local`](Self::local))
/// and process-wide telemetry (the registry, hence `metrics`, windowed
/// rates, and session fold-in) at once. Costs one extra relaxed
/// `fetch_add` per add over a bare counter.
#[derive(Debug)]
pub struct ScopedCounter {
    global: LiveCounter,
    local: AtomicU64,
}

impl ScopedCounter {
    /// A fresh instance-local view over the global counter `name`.
    pub fn new(name: &str) -> ScopedCounter {
        ScopedCounter {
            global: counter(name),
            local: AtomicU64::new(0),
        }
    }

    /// Adds `delta` to both the local and the global cell.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.global.add(delta);
        self.local.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the local cell to at least `value`, mirroring the raise
    /// into the global cell as a delta — the high-watermark idiom
    /// (e.g. peak queue depth) expressed over monotone counters.
    pub fn raise_to(&self, value: u64) {
        let mut seen = self.local.load(Ordering::Relaxed);
        while value > seen {
            match self.local.compare_exchange_weak(
                seen,
                value,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.global.add(value - seen);
                    return;
                }
                Err(actual) => seen = actual,
            }
        }
    }

    /// This instance's contribution alone.
    pub fn local(&self) -> u64 {
        self.local.load(Ordering::Relaxed)
    }

    /// The process-wide cumulative value (all instances).
    pub fn global_total(&self) -> u64 {
        self.global.get()
    }
}

/// The handle for the process-wide counter `name`, registering it on
/// first use. Handles are meant to be obtained once and held.
pub fn counter(name: &str) -> LiveCounter {
    let mut counters = crate::lock(&registry().counters);
    let cell = counters
        .entry(name.to_string())
        .or_insert_with(|| Arc::new(AtomicU64::new(0)));
    LiveCounter {
        cell: Arc::clone(cell),
    }
}

/// The handle for the process-wide histogram `name`, registering it on
/// first use. Handles are meant to be obtained once and held.
pub fn histogram(name: &str) -> LiveHistogram {
    let mut hists = crate::lock(&registry().hists);
    let hist = hists
        .entry(name.to_string())
        .or_insert_with(|| Arc::new(Histogram::new()));
    LiveHistogram {
        hist: Arc::clone(hist),
    }
}

/// A cumulative point-in-time copy of every live counter and histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveSnapshot {
    /// Nanoseconds since the trace epoch when the snapshot was taken.
    pub at_nanos: u64,
    /// `(name, cumulative value)`, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, cumulative distribution)`, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl LiveSnapshot {
    /// The cumulative value of a named counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The cumulative histogram under `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

/// Takes a cumulative snapshot of the whole live registry.
pub fn cumulative() -> LiveSnapshot {
    let reg = registry();
    let mut counters: Vec<(String, u64)> = crate::lock(&reg.counters)
        .iter()
        .map(|(name, c)| (name.clone(), c.load(Ordering::Relaxed)))
        .collect();
    counters.sort();
    let mut histograms: Vec<(String, HistogramSnapshot)> = crate::lock(&reg.hists)
        .iter()
        .map(|(name, h)| (name.clone(), h.snapshot()))
        .collect();
    histograms.sort_by(|a, b| a.0.cmp(&b.0));
    LiveSnapshot {
        at_nanos: crate::now_nanos(),
        counters,
        histograms,
    }
}

/// Deltas over a recent time span, as produced by [`window`] (or
/// [`since`] against an explicit baseline).
#[derive(Debug, Clone, PartialEq)]
pub struct Window {
    /// Nanoseconds the window actually covers — callers compute rates
    /// against this, not against what they asked for, so a young
    /// process or a sparse ring yields honest numbers.
    pub elapsed_nanos: u64,
    /// Counter deltas over the window, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Delta histograms over the window, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Window {
    /// The delta of a named counter over the window (0 if unregistered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The delta histogram under `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// The named counter's rate over the window, per second.
    pub fn rate(&self, name: &str) -> f64 {
        if self.elapsed_nanos == 0 {
            return 0.0;
        }
        self.counter(name) as f64 / (self.elapsed_nanos as f64 / 1e9)
    }
}

/// The delta of the current live state against an explicit earlier
/// snapshot.
pub fn since(base: &LiveSnapshot) -> Window {
    delta(cumulative(), base)
}

fn delta(now: LiveSnapshot, base: &LiveSnapshot) -> Window {
    let counters = now
        .counters
        .iter()
        .map(|(name, v)| {
            (
                name.clone(),
                v.saturating_sub(base.counter(name).unwrap_or(0)),
            )
        })
        .collect();
    let empty = HistogramSnapshot::default();
    let histograms = now
        .histograms
        .iter()
        .map(|(name, h)| (name.clone(), h.diff(base.histogram(name).unwrap_or(&empty))))
        .collect();
    Window {
        elapsed_nanos: now.at_nanos.saturating_sub(base.at_nanos),
        counters,
        histograms,
    }
}

/// Advances the rollup rings: appends a cumulative snapshot to each
/// ring whose newest entry is at least one spacing old. Call it
/// periodically (a daemon ticker thread) or opportunistically before
/// queries — [`window`] calls it itself, so a process that only ever
/// asks still gets history at its query cadence.
pub fn tick() {
    let now = cumulative();
    let mut rings = crate::lock(&registry().rings);
    rings.fine.advance(&now);
    rings.coarse.advance(&now);
}

/// Deltas over (approximately) the last `want` of wall time: the
/// current cumulative state diffed against the retained snapshot whose
/// age best matches `want`, falling back to the process-start baseline
/// (all zeros at the trace epoch) when the rings hold nothing closer.
/// Check [`Window::elapsed_nanos`] for the span actually covered.
pub fn window(want: Duration) -> Window {
    tick();
    let now = cumulative();
    let target = now.at_nanos.saturating_sub(want.as_nanos() as u64);
    let base = {
        let rings = crate::lock(&registry().rings);
        // The epoch baseline competes with ring entries on the same
        // distance-to-target footing.
        match rings.best_for(target) {
            Some(best) if best.at_nanos.abs_diff(target) <= target => Some(best.clone()),
            _ => None,
        }
    };
    match base {
        Some(base) => delta(now, &base),
        None => {
            let epoch = LiveSnapshot {
                at_nanos: 0,
                counters: Vec::new(),
                histograms: Vec::new(),
            };
            delta(now, &epoch)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(at_nanos: u64, value: u64) -> LiveSnapshot {
        LiveSnapshot {
            at_nanos,
            counters: vec![("t.ring".to_string(), value)],
            histograms: Vec::new(),
        }
    }

    #[test]
    fn counters_and_histograms_accumulate_without_a_session() {
        assert!(!crate::enabled());
        let c = counter("test.live.acc");
        let h = histogram("test.live.acc_lat");
        c.add(2);
        c.add(3);
        h.record_nanos(1_000);
        assert_eq!(c.get(), 5);
        assert_eq!(counter("test.live.acc").get(), 5, "handles share the cell");
        let cum = cumulative();
        assert_eq!(cum.counter("test.live.acc"), Some(5));
        assert_eq!(cum.histogram("test.live.acc_lat").unwrap().count, 1);
    }

    #[test]
    fn scoped_counters_split_local_from_global() {
        let a = ScopedCounter::new("test.live.scoped");
        let b = ScopedCounter::new("test.live.scoped");
        a.add(2);
        b.add(5);
        assert_eq!(a.local(), 2);
        assert_eq!(b.local(), 5);
        assert_eq!(a.global_total(), 7);
        assert_eq!(b.global_total(), 7);
    }

    #[test]
    fn raise_to_mirrors_the_high_watermark_globally() {
        let a = ScopedCounter::new("test.live.peak");
        a.raise_to(3);
        a.raise_to(2); // below the watermark: no-op
        a.raise_to(7);
        assert_eq!(a.local(), 7);
        let b = ScopedCounter::new("test.live.peak");
        b.raise_to(4);
        assert_eq!(b.local(), 4);
        // Global saw the sum of raises: (3 + 4) + 4 = 11.
        assert_eq!(a.global_total(), 11);
    }

    #[test]
    fn since_reports_deltas_not_cumulative_values() {
        let c = counter("test.live.delta");
        let h = histogram("test.live.delta_lat");
        c.add(10);
        h.record_nanos(100);
        let base = cumulative();
        c.add(4);
        h.record_nanos(200);
        h.record_nanos(300);
        let w = since(&base);
        assert_eq!(w.counter("test.live.delta"), 4);
        let dh = w.histogram("test.live.delta_lat").unwrap();
        assert_eq!(dh.count, 2);
        assert_eq!(dh.sum, 500);
    }

    #[test]
    fn window_rates_use_the_covered_span() {
        let w = Window {
            elapsed_nanos: 2_000_000_000,
            counters: vec![("t.r".to_string(), 10)],
            histograms: Vec::new(),
        };
        assert_eq!(w.rate("t.r"), 5.0);
        assert_eq!(w.rate("t.unknown"), 0.0);
    }

    #[test]
    fn ring_advances_at_spacing_and_caps_length() {
        let mut ring = Ring::new(Duration::from_secs(1));
        ring.advance(&snap(0, 0));
        ring.advance(&snap(500_000_000, 1)); // half a spacing: skipped
        assert_eq!(ring.snaps.len(), 1);
        for i in 1..=(RING_CAP as u64 + 8) {
            ring.advance(&snap(i * 1_000_000_000, i));
        }
        assert_eq!(ring.snaps.len(), RING_CAP, "oldest entries evicted");
        assert_eq!(
            ring.snaps.back().unwrap().counters[0].1,
            RING_CAP as u64 + 8
        );
    }

    #[test]
    fn best_for_picks_the_closest_retained_snapshot() {
        let mut rings = Rings {
            fine: Ring::new(Duration::from_secs(1)),
            coarse: Ring::new(Duration::from_secs(60)),
        };
        for at in [10u64, 11, 12] {
            rings.fine.advance(&snap(at * 1_000_000_000, at));
        }
        rings.coarse.advance(&snap(0, 0));
        let best = rings.best_for(11_200_000_000).unwrap();
        assert_eq!(best.at_nanos, 11_000_000_000);
        let best = rings.best_for(500_000_000).unwrap();
        assert_eq!(best.at_nanos, 0, "coarse ring serves old targets");
    }

    #[test]
    fn window_covers_the_whole_process_before_any_history_exists() {
        let c = counter("test.live.window");
        c.add(3);
        // Even if the rings hold only fresh entries, a wide window must
        // not diff against "now" and report zero activity.
        let w = window(Duration::from_secs(3600));
        assert!(w.counter("test.live.window") >= 3);
        assert!(w.elapsed_nanos > 0);
    }
}
