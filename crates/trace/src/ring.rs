//! Per-thread event ring buffers.
//!
//! Every instrumented thread owns one `ThreadBuffer`: a bounded ring
//! the thread appends span begin/end events to. The ring drops its
//! *oldest* events when full (the most recent activity is what a trace
//! viewer needs) and counts what it dropped, so exports can report
//! truncation instead of silently pretending full coverage.
//!
//! The buffer is registered globally on first use so the exporter can
//! drain all threads at session teardown. The owning thread is the only
//! writer; the mutex it takes is therefore uncontended on the hot path
//! (a single compare-and-swap) — the exporter only touches it once
//! recording has been disabled.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A span name: either a static string (hot paths, zero allocation) or a
/// shared owned string (dynamic names such as per-artifact spans).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SpanName {
    /// A compile-time name; the common case for hot-path spans.
    Static(&'static str),
    /// A runtime-built name; cloning only bumps a refcount.
    Owned(Arc<str>),
}

impl SpanName {
    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        match self {
            SpanName::Static(s) => s,
            SpanName::Owned(s) => s,
        }
    }
}

impl From<&'static str> for SpanName {
    fn from(s: &'static str) -> Self {
        SpanName::Static(s)
    }
}

impl From<String> for SpanName {
    fn from(s: String) -> Self {
        SpanName::Owned(s.into())
    }
}

impl std::fmt::Display for SpanName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which side of a span an event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span entry (Chrome trace `ph: "B"`).
    Begin,
    /// Span exit (Chrome trace `ph: "E"`).
    End,
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Span name.
    pub name: SpanName,
    /// Begin or end.
    pub phase: Phase,
    /// Nanoseconds since the process trace epoch.
    pub ts_nanos: u64,
    /// Trace thread id (dense, assigned in first-event order).
    pub tid: u64,
}

struct Ring {
    events: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

/// One thread's bounded event buffer plus its identity.
pub(crate) struct ThreadBuffer {
    pub(crate) tid: u64,
    pub(crate) thread_name: String,
    ring: Mutex<Ring>,
}

static NEXT_TID: AtomicU64 = AtomicU64::new(0);

impl ThreadBuffer {
    pub(crate) fn new(capacity: usize) -> Arc<ThreadBuffer> {
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let thread_name = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("thread-{tid}"));
        Arc::new(ThreadBuffer {
            tid,
            thread_name,
            ring: Mutex::new(Ring {
                events: VecDeque::with_capacity(capacity.min(1024)),
                capacity,
                dropped: 0,
            }),
        })
    }

    /// Appends one event, dropping the oldest when the ring is full.
    pub(crate) fn push(&self, event: Event) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.events.len() >= ring.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event);
    }

    /// Copies out the buffered events and the drop count.
    pub(crate) fn collect(&self) -> (Vec<Event>, u64) {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        (ring.events.iter().cloned().collect(), ring.dropped)
    }

    /// Empties the ring and resets its capacity (new session).
    pub(crate) fn reset(&self, capacity: usize) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.events.clear();
        ring.capacity = capacity;
        ring.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(ts: u64) -> Event {
        Event {
            name: "t".into(),
            phase: Phase::Begin,
            ts_nanos: ts,
            tid: 0,
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let buf = ThreadBuffer::new(3);
        for ts in 0..5 {
            buf.push(event(ts));
        }
        let (events, dropped) = buf.collect();
        assert_eq!(dropped, 2);
        let ts: Vec<u64> = events.iter().map(|e| e.ts_nanos).collect();
        assert_eq!(ts, vec![2, 3, 4], "oldest events dropped first");
    }

    #[test]
    fn reset_clears_events_and_drop_counter() {
        let buf = ThreadBuffer::new(2);
        buf.push(event(0));
        buf.push(event(1));
        buf.push(event(2));
        buf.reset(8);
        let (events, dropped) = buf.collect();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
        for ts in 0..8 {
            buf.push(event(ts));
        }
        assert_eq!(buf.collect().0.len(), 8, "new capacity in effect");
    }

    #[test]
    fn span_names_compare_across_variants() {
        let a: SpanName = "sim.kernel".into();
        let b: SpanName = String::from("sim.kernel").into();
        assert_eq!(a.as_str(), b.as_str());
        assert_eq!(a.to_string(), "sim.kernel");
    }
}
