//! Exporters: Chrome trace-event JSON and compact summaries.
//!
//! [`chrome_trace`] renders a [`Snapshot`] as a trace-event array that
//! loads directly in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev):
//! one `ph: "M"` metadata event naming each thread, then balanced
//! `ph: "B"` / `ph: "E"` events with microsecond timestamps, then one
//! `ph: "C"` counter event per named counter holding its final value
//! (e.g. the `sim.ff.*` fast-forward statistics). [`summary`]
//! renders the aggregate view (per-span histograms, counters, drop
//! count) as JSON, and [`summary_table`] as text for terminals.
//!
//! [`span_stats_from_chrome_trace`] and [`counters_from_chrome_trace`]
//! go the other way: they rebuild per-span statistics and counter
//! values from a previously exported trace file, which is what
//! `xp trace summary <file>` runs on.

use crate::hist::HistogramSnapshot;
use crate::ring::Phase;
use crate::Snapshot;
use common::json::Json;
use common::table::TextTable;

/// Renders a snapshot as a Chrome trace-event JSON array.
pub fn chrome_trace(snapshot: &Snapshot) -> Json {
    let mut events = Json::array();
    for (tid, name) in &snapshot.threads {
        let mut meta = Json::object();
        meta.insert("name", "thread_name");
        meta.insert("ph", "M");
        meta.insert("pid", 1u64);
        meta.insert("tid", *tid);
        let mut args = Json::object();
        args.insert("name", name.as_str());
        meta.insert("args", args);
        events.push(meta);
    }
    for event in &snapshot.events {
        let mut e = Json::object();
        e.insert("name", event.name.as_str());
        e.insert("cat", "mmgpu");
        e.insert(
            "ph",
            match event.phase {
                Phase::Begin => "B",
                Phase::End => "E",
            },
        );
        // Trace-event timestamps are microseconds.
        e.insert("ts", event.ts_nanos as f64 / 1000.0);
        e.insert("pid", 1u64);
        e.insert("tid", event.tid);
        events.push(e);
    }
    // Counters go last as Chrome counter events so trace files carry
    // them (viewers chart them; `xp trace summary` tabulates them).
    let end_ts = snapshot
        .events
        .iter()
        .map(|e| e.ts_nanos)
        .max()
        .unwrap_or(0);
    for (name, value) in &snapshot.counters {
        let mut e = Json::object();
        e.insert("name", name.as_str());
        e.insert("cat", "mmgpu");
        e.insert("ph", "C");
        e.insert("ts", end_ts as f64 / 1000.0);
        e.insert("pid", 1u64);
        e.insert("tid", 0u64);
        let mut args = Json::object();
        args.insert("value", *value);
        e.insert("args", args);
        events.push(e);
    }
    events
}

/// Renders a snapshot's aggregate view (per-span statistics, counters,
/// drop count) as a JSON object.
pub fn summary(snapshot: &Snapshot) -> Json {
    let mut spans = Json::object();
    for (name, hist) in &snapshot.histograms {
        spans.insert(name.as_str(), hist_json(hist));
    }
    let mut counters = Json::object();
    for (name, value) in &snapshot.counters {
        counters.insert(name.as_str(), *value);
    }
    let mut out = Json::object();
    out.insert("spans", spans);
    out.insert("counters", counters);
    out.insert("events", snapshot.events.len());
    out.insert("dropped_events", snapshot.dropped_events);
    out
}

fn hist_json(hist: &HistogramSnapshot) -> Json {
    let mut h = Json::object();
    h.insert("count", hist.count);
    h.insert("total_secs", hist.sum as f64 / 1e9);
    h.insert("mean_secs", hist.mean() / 1e9);
    h.insert("p50_secs", hist.quantile(0.50) as f64 / 1e9);
    h.insert("p90_secs", hist.quantile(0.90) as f64 / 1e9);
    h.insert("p99_secs", hist.quantile(0.99) as f64 / 1e9);
    h.insert("max_secs", hist.max as f64 / 1e9);
    h
}

/// Per-span statistics rebuilt from an exported trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    /// Span name.
    pub name: String,
    /// Duration distribution of the matched begin/end pairs.
    pub hist: HistogramSnapshot,
}

/// Rebuilds per-span statistics from a Chrome trace-event array, pairing
/// each `ph: "E"` with the most recent open `ph: "B"` on the same
/// thread (spans nest). `ph: "X"` complete events use their `dur`
/// directly; metadata and unknown phases are skipped. Unmatched events —
/// possible when a ring dropped its oldest entries — are tolerated and
/// reported in the returned drop count.
///
/// Returns `(stats sorted by total time descending, unmatched events)`.
pub fn span_stats_from_chrome_trace(trace: &Json) -> Result<(Vec<SpanStats>, u64), String> {
    let events = trace
        .as_array()
        .ok_or_else(|| "trace file is not a JSON array of events".to_string())?;
    let mut stats: Vec<SpanStats> = Vec::new();
    let mut record = |name: &str, dur_nanos: u64| match stats.iter_mut().find(|s| s.name == name) {
        Some(s) => s.hist.record(dur_nanos),
        None => {
            let mut hist = HistogramSnapshot::default();
            hist.record(dur_nanos);
            stats.push(SpanStats {
                name: name.to_string(),
                hist,
            });
        }
    };
    // Per-tid stack of open (name, ts_nanos) begin events.
    let mut open: Vec<(u64, Vec<(String, u64)>)> = Vec::new();
    let mut unmatched = 0u64;
    for (i, event) in events.iter().enumerate() {
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i} has no \"ph\" field"))?;
        if ph != "B" && ph != "E" && ph != "X" {
            continue;
        }
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i} ({ph}) has no \"name\" field"))?;
        let ts = event
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i} ({ph} {name:?}) has no numeric \"ts\""))?;
        let ts_nanos = (ts * 1000.0).round().max(0.0) as u64;
        if ph == "X" {
            let dur = event.get("dur").and_then(Json::as_f64).unwrap_or(0.0);
            record(name, (dur * 1000.0).round().max(0.0) as u64);
            continue;
        }
        let tid = event.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let stack = match open.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, stack)) => stack,
            None => {
                open.push((tid, Vec::new()));
                &mut open.last_mut().expect("just pushed").1
            }
        };
        if ph == "B" {
            stack.push((name.to_string(), ts_nanos));
        } else {
            match stack.pop() {
                Some((open_name, start)) if open_name == name => {
                    record(name, ts_nanos.saturating_sub(start));
                }
                Some(other) => {
                    // Interleaved begin lost to a ring drop; put it back
                    // and skip this end.
                    stack.push(other);
                    unmatched += 1;
                }
                None => unmatched += 1,
            }
        }
    }
    unmatched += open
        .iter()
        .map(|(_, stack)| stack.len() as u64)
        .sum::<u64>();
    stats.sort_by(|a, b| b.hist.sum.cmp(&a.hist.sum).then(a.name.cmp(&b.name)));
    Ok((stats, unmatched))
}

/// Rebuilds final counter values from a Chrome trace-event array — the
/// `ph: "C"` events [`chrome_trace`] appends. When a counter is sampled
/// more than once, the latest timestamp (last in file order on ties)
/// wins. Returns counters sorted by name; events without the expected
/// `args.value` field are skipped rather than fatal, so traces from
/// other producers still summarize.
pub fn counters_from_chrome_trace(trace: &Json) -> Result<Vec<(String, u64)>, String> {
    let events = trace
        .as_array()
        .ok_or_else(|| "trace file is not a JSON array of events".to_string())?;
    let mut counters: Vec<(String, f64, u64)> = Vec::new();
    for event in events {
        if event.get("ph").and_then(Json::as_str) != Some("C") {
            continue;
        }
        let (Some(name), Some(value)) = (
            event.get("name").and_then(Json::as_str),
            event
                .get("args")
                .and_then(|a| a.get("value"))
                .and_then(Json::as_f64),
        ) else {
            continue;
        };
        let ts = event.get("ts").and_then(Json::as_f64).unwrap_or(0.0);
        match counters.iter_mut().find(|(n, _, _)| n == name) {
            Some(entry) if entry.1 <= ts => {
                entry.1 = ts;
                entry.2 = value as u64;
            }
            Some(_) => {}
            None => counters.push((name.to_string(), ts, value as u64)),
        }
    }
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(counters.into_iter().map(|(n, _, v)| (n, v)).collect())
}

/// Renders counter values as an aligned text table.
pub fn counters_table(counters: &[(String, u64)]) -> String {
    let mut table = TextTable::new(["counter", "value"]);
    for (name, value) in counters {
        table.row([name.clone(), value.to_string()]);
    }
    table.render()
}

/// Renders span statistics as an aligned text table, sorted by total
/// time descending.
pub fn summary_table(stats: &[SpanStats]) -> String {
    let mut table = TextTable::new(["span", "count", "total", "p50", "p90", "p99", "max"]);
    for s in stats {
        table.row([
            s.name.clone(),
            s.hist.count.to_string(),
            fmt_nanos(s.hist.sum),
            fmt_nanos(s.hist.quantile(0.50)),
            fmt_nanos(s.hist.quantile(0.90)),
            fmt_nanos(s.hist.quantile(0.99)),
            fmt_nanos(s.hist.max),
        ]);
    }
    table.render()
}

/// Formats a nanosecond duration with a human-scale unit.
pub fn fmt_nanos(nanos: u64) -> String {
    let n = nanos as f64;
    if n >= 1e9 {
        format!("{:.2}s", n / 1e9)
    } else if n >= 1e6 {
        format!("{:.2}ms", n / 1e6)
    } else if n >= 1e3 {
        format!("{:.2}us", n / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{Event, SpanName};

    fn snapshot() -> Snapshot {
        let span = |name: &'static str, phase: Phase, ts: u64, tid: u64| Event {
            name: SpanName::Static(name),
            phase,
            ts_nanos: ts,
            tid,
        };
        let mut hist = HistogramSnapshot::default();
        hist.record(3_000);
        Snapshot {
            events: vec![
                span("a", Phase::Begin, 1_000, 0),
                span("b", Phase::Begin, 2_000, 1),
                span("a", Phase::End, 4_000, 0),
                span("b", Phase::End, 5_000, 1),
            ],
            threads: vec![(0, "main".to_string()), (1, "worker-1".to_string())],
            counters: vec![("cache.hit".to_string(), 42)],
            histograms: vec![("a".to_string(), hist)],
            dropped_events: 0,
        }
    }

    #[test]
    fn chrome_trace_has_metadata_then_balanced_events() {
        let json = chrome_trace(&snapshot());
        let events = json.as_array().unwrap();
        assert_eq!(events.len(), 7);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("M"));
        assert_eq!(events[2].get("ph").unwrap().as_str(), Some("B"));
        assert_eq!(events[2].get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(events[2].get("pid").unwrap().as_f64(), Some(1.0));
        // Counters come last as `ph: "C"` events at the final timestamp.
        assert_eq!(events[6].get("ph").unwrap().as_str(), Some("C"));
        assert_eq!(events[6].get("name").unwrap().as_str(), Some("cache.hit"));
        assert_eq!(events[6].get("ts").unwrap().as_f64(), Some(5.0));
        // Round-trips through the strict parser.
        let reparsed = Json::parse(&json.render()).unwrap();
        assert_eq!(reparsed.as_array().unwrap().len(), 7);
    }

    #[test]
    fn counters_rebuild_from_exported_trace() {
        let json = chrome_trace(&snapshot());
        let counters = counters_from_chrome_trace(&json).unwrap();
        assert_eq!(counters, vec![("cache.hit".to_string(), 42)]);
        let table = counters_table(&counters);
        assert!(table.contains("cache.hit"), "{table}");
        assert!(table.contains("42"), "{table}");
    }

    #[test]
    fn latest_counter_sample_wins() {
        let mut trace = Json::array();
        for (ts, value) in [(2.0, 7u64), (1.0, 3u64)] {
            let mut c = Json::object();
            c.insert("name", "sim.ff.jumps");
            c.insert("ph", "C");
            c.insert("ts", ts);
            c.insert("pid", 1u64);
            c.insert("tid", 0u64);
            let mut args = Json::object();
            args.insert("value", value);
            c.insert("args", args);
            trace.push(c);
        }
        let counters = counters_from_chrome_trace(&trace).unwrap();
        assert_eq!(counters, vec![("sim.ff.jumps".to_string(), 7)]);
    }

    #[test]
    fn stats_rebuild_from_exported_trace() {
        let json = chrome_trace(&snapshot());
        let (stats, unmatched) = span_stats_from_chrome_trace(&json).unwrap();
        assert_eq!(unmatched, 0);
        assert_eq!(stats.len(), 2);
        // "a" ran 3us, "b" 3us; sorted by total then name.
        assert_eq!(stats[0].name, "a");
        assert_eq!(stats[0].hist.count, 1);
        assert_eq!(stats[0].hist.sum, 3_000);
        let table = summary_table(&stats);
        assert!(table.contains("span"), "{table}");
        assert!(table.contains("3.00us"), "{table}");
    }

    #[test]
    fn unmatched_events_are_counted_not_fatal() {
        let mut trace = Json::array();
        let mut begin = Json::object();
        begin.insert("name", "orphan");
        begin.insert("ph", "B");
        begin.insert("ts", 1.0);
        begin.insert("pid", 1u64);
        begin.insert("tid", 0u64);
        trace.push(begin);
        let mut end = Json::object();
        end.insert("name", "other");
        end.insert("ph", "E");
        end.insert("ts", 2.0);
        end.insert("pid", 1u64);
        end.insert("tid", 7u64);
        trace.push(end);
        let (stats, unmatched) = span_stats_from_chrome_trace(&trace).unwrap();
        assert!(stats.is_empty());
        assert_eq!(unmatched, 2);
    }

    #[test]
    fn counter_only_traces_have_no_span_stats() {
        // A daemon session can legitimately export counters and no
        // spans at all (always-on registry, nothing span-instrumented
        // fired); the summary must not invent or reject anything.
        let mut trace = Json::array();
        let mut meta = Json::object();
        meta.insert("name", "process_name");
        meta.insert("ph", "M");
        trace.push(meta);
        for (name, value) in [("xpd.request", 12u64), ("xpd.store.hit", 9u64)] {
            let mut c = Json::object();
            c.insert("name", name);
            c.insert("ph", "C");
            c.insert("ts", 1.0);
            c.insert("pid", 1u64);
            c.insert("tid", 0u64);
            let mut args = Json::object();
            args.insert("value", value);
            c.insert("args", args);
            trace.push(c);
        }
        let (stats, unmatched) = span_stats_from_chrome_trace(&trace).unwrap();
        assert!(stats.is_empty());
        assert_eq!(unmatched, 0);
        let counters = counters_from_chrome_trace(&trace).unwrap();
        assert_eq!(
            counters,
            vec![
                ("xpd.request".to_string(), 12),
                ("xpd.store.hit".to_string(), 9)
            ]
        );
    }

    #[test]
    fn truncated_ring_counts_leftover_opens_as_unmatched() {
        // A ring that dropped its newest tail leaves begins with no
        // ends: the matched inner pair still summarizes, every open
        // begin is reported as unmatched, never as a zero-length span.
        let event = |name: &str, ph: &str, ts: f64, tid: u64| {
            let mut e = Json::object();
            e.insert("name", name);
            e.insert("ph", ph);
            e.insert("ts", ts);
            e.insert("pid", 1u64);
            e.insert("tid", tid);
            e
        };
        let mut trace = Json::array();
        trace.push(event("outer", "B", 1.0, 0));
        trace.push(event("inner", "B", 2.0, 0));
        trace.push(event("inner", "E", 3.0, 0));
        // `E outer` on tid 0 and `E solo` on tid 1 were lost.
        trace.push(event("solo", "B", 4.0, 1));
        let (stats, unmatched) = span_stats_from_chrome_trace(&trace).unwrap();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].name, "inner");
        assert_eq!(stats[0].hist.sum, 1_000);
        assert_eq!(unmatched, 2);
    }

    #[test]
    fn complete_events_use_dur() {
        let mut trace = Json::array();
        let mut x = Json::object();
        x.insert("name", "whole");
        x.insert("ph", "X");
        x.insert("ts", 0.0);
        x.insert("dur", 2.5);
        x.insert("pid", 1u64);
        x.insert("tid", 0u64);
        trace.push(x);
        let (stats, unmatched) = span_stats_from_chrome_trace(&trace).unwrap();
        assert_eq!(unmatched, 0);
        assert_eq!(stats[0].hist.sum, 2_500);
    }

    #[test]
    fn summary_exports_spans_and_counters() {
        let json = summary(&snapshot());
        assert_eq!(
            json.keys(),
            vec!["spans", "counters", "events", "dropped_events"]
        );
        let a = json.get("spans").unwrap().get("a").unwrap();
        assert_eq!(a.get("count").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            json.get("counters")
                .unwrap()
                .get("cache.hit")
                .unwrap()
                .as_f64(),
            Some(42.0)
        );
        Json::parse(&json.render()).unwrap();
    }

    #[test]
    fn nanos_format_picks_readable_units() {
        assert_eq!(fmt_nanos(0), "0ns");
        assert_eq!(fmt_nanos(999), "999ns");
        assert_eq!(fmt_nanos(1_500), "1.50us");
        assert_eq!(fmt_nanos(2_000_000), "2.00ms");
        assert_eq!(fmt_nanos(3_200_000_000), "3.20s");
    }
}
