//! Log-bucketed latency histograms.
//!
//! Durations (in nanoseconds) land in power-of-two buckets: bucket 0
//! holds the value 0 and bucket `i >= 1` covers `[2^(i-1), 2^i - 1]`.
//! That makes recording a `leading_zeros` plus two relaxed atomic
//! increments (bucket and sum; the count is derived from the buckets),
//! bounds the relative quantile error at 2x, and keeps the whole
//! histogram a fixed 65-slot array — no allocation, no locks, and
//! merges are plain element-wise sums (associative and commutative, a
//! property the test suite checks).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per bit of a `u64`.
pub const NUM_BUCKETS: usize = 65;

/// The bucket index a value lands in.
pub fn bucket_of(nanos: u64) -> usize {
    if nanos == 0 {
        0
    } else {
        64 - nanos.leading_zeros() as usize
    }
}

/// Smallest value bucket `i` can hold.
pub fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Largest value bucket `i` can hold.
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A concurrent log-bucketed histogram of nanosecond durations.
///
/// All operations are relaxed atomics; cross-counter consistency is only
/// guaranteed once recording has quiesced (which is when snapshots are
/// taken — at session teardown).
#[derive(Debug)]
pub struct Histogram {
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; NUM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one duration, in nanoseconds.
    ///
    /// Two relaxed `fetch_add`s (sum and bucket) plus one relaxed load
    /// on the common path — the count is the bucket total, so it needs
    /// no cell of its own, and the max only pays an RMW when the value
    /// actually raises it (a handful of times over a process lifetime).
    /// This is the always-on registry's unconditional hot path, so the
    /// `bench --bench trace` overhead guard holds it to < 2% on ~1 us
    /// work.
    pub fn record(&self, nanos: u64) {
        self.sum.fetch_add(nanos, Ordering::Relaxed);
        if nanos > self.max.load(Ordering::Relaxed) {
            self.max.fetch_max(nanos, Ordering::Relaxed);
        }
        self.buckets[bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: buckets.iter().sum(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// An immutable copy of a [`Histogram`]'s counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of all recorded values (nanoseconds).
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Per-bucket occupancy (see [`bucket_of`]).
    pub buckets: [u64; NUM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; NUM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Records into the snapshot directly (for offline aggregation, e.g.
    /// rebuilding span statistics from an exported trace file).
    pub fn record(&mut self, nanos: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(nanos);
        self.max = self.max.max(nanos);
        self.buckets[bucket_of(nanos)] += 1;
    }

    /// The quantile estimate for `q` in `[0, 1]`: the upper bound of the
    /// smallest bucket whose cumulative count reaches `ceil(q * count)`,
    /// clamped to the observed maximum. The estimate never undershoots
    /// the true quantile and overshoots it by at most 2x (one bucket).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Mean of the recorded values, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The element-wise sum of two snapshots (the histogram of the
    /// combined sample sets). Associative and commutative.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut merged = self.clone();
        merged.count += other.count;
        merged.sum = merged.sum.saturating_add(other.sum);
        merged.max = merged.max.max(other.max);
        for (slot, n) in merged.buckets.iter_mut().zip(other.buckets.iter()) {
            *slot += n;
        }
        merged
    }

    /// The element-wise difference `self - earlier`: the histogram of
    /// the samples recorded between two cumulative snapshots of the same
    /// histogram (the inverse of [`merge`](Self::merge), which windowed
    /// rollups rely on). Subtractions saturate, so a mismatched pair
    /// degrades to zeros rather than wrapping.
    ///
    /// The true maximum of the window is not recoverable from cumulative
    /// counters; it is estimated as the upper bound of the highest
    /// non-empty delta bucket (within 2x, like the quantiles), clamped
    /// to the cumulative maximum.
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: 0,
            buckets: [0; NUM_BUCKETS],
        };
        let mut top = None;
        for (i, slot) in out.buckets.iter_mut().enumerate() {
            *slot = self.buckets[i].saturating_sub(earlier.buckets[i]);
            if *slot > 0 {
                top = Some(i);
            }
        }
        out.max = top.map_or(0, |i| bucket_upper(i).min(self.max));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..NUM_BUCKETS {
            assert!(bucket_lower(i) <= bucket_upper(i));
            assert_eq!(bucket_of(bucket_lower(i)), i);
            assert_eq!(bucket_of(bucket_upper(i)), i);
        }
    }

    #[test]
    fn quantiles_bound_the_true_values() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.max, 1000);
        // p100 hits the exact max (clamped); p50 is within 2x of the
        // true median (50).
        assert_eq!(s.quantile(1.0), 1000);
        let p50 = s.quantile(0.5);
        assert!((50..=100).contains(&p50), "p50 {p50}");
        // Monotone in q.
        assert!(s.quantile(0.5) <= s.quantile(0.9));
        assert!(s.quantile(0.9) <= s.quantile(0.99));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_is_the_combined_sample_set() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [1u64, 5, 9] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 1000] {
            b.record(v);
            all.record(v);
        }
        assert_eq!(a.snapshot().merge(&b.snapshot()), all.snapshot());
    }

    #[test]
    fn diff_inverts_merge_up_to_the_max_estimate() {
        let earlier = Histogram::new();
        for v in [3u64, 80, 700] {
            earlier.record(v);
        }
        let window = Histogram::new();
        for v in [10u64, 10, 500] {
            window.record(v);
        }
        let earlier = earlier.snapshot();
        let cumulative = earlier.merge(&window.snapshot());
        let got = cumulative.diff(&earlier);
        assert_eq!(got.count, 3);
        assert_eq!(got.sum, 520);
        assert_eq!(got.buckets, window.snapshot().buckets);
        // The window max is estimated from its top bucket: 500 lands in
        // [256, 511], so the estimate is 511 (never under the truth,
        // at most 2x over), clamped by the cumulative max.
        assert_eq!(got.max, 511);
        assert!(got.max >= 500 && got.max <= 1000);
    }

    #[test]
    fn diff_of_identical_snapshots_is_empty_and_saturates() {
        let h = Histogram::new();
        h.record(42);
        let s = h.snapshot();
        let zero = s.diff(&s);
        assert_eq!(zero, HistogramSnapshot::default());
        // A stale "earlier" bigger than "now" degrades to zeros.
        assert_eq!(HistogramSnapshot::default().diff(&s).count, 0);
    }
}
