#![deny(missing_docs)]

//! Std-only observability: span tracing, counters, latency histograms,
//! and Chrome-trace export.
//!
//! The sweep runtime executes hundreds of simulation points across a
//! work-stealing pool; when a run is slow (or a retry storm hits) a
//! final metrics summary says *that* time was spent, not *where*. This
//! crate is the "where": lightweight spans over per-thread ring buffers
//! plus a global registry of named counters and log-bucketed latency
//! histograms, exportable as Chrome trace-event JSON (loadable in
//! `chrome://tracing` / [Perfetto](https://ui.perfetto.dev)) or as a
//! compact summary.
//!
//! Design constraints, in priority order:
//!
//! 1. **Free when off.** Without an active [`Session`], every
//!    instrumentation call is one relaxed atomic load and a branch —
//!    cheap enough to leave in simulator hot loops (the `bench` crate's
//!    `trace` bench holds this below 2% on microsecond-scale work).
//! 2. **Never blocks the traced thread on another traced thread.** Each
//!    thread appends to its own bounded ring ([`ring`]); the only lock
//!    taken is the thread's own, contended only by the exporter after
//!    recording is disabled. Rings drop their **oldest** events when
//!    full and export the drop count.
//! 3. **No dependencies.** Export goes through `common::json`.
//!
//! # Examples
//!
//! ```
//! let session = trace::session(trace::TraceConfig::default());
//! {
//!     let _sweep = trace::span("example.sweep");
//!     trace::count("example.points", 3);
//!     trace::record("example.point_wall", std::time::Duration::from_micros(250));
//! }
//! let snapshot = session.finish();
//! assert_eq!(snapshot.counter("example.points"), Some(3));
//! let json = trace::export::chrome_trace(&snapshot);
//! assert!(json.render().starts_with('['));
//! assert!(!trace::enabled(), "finishing the session disables tracing");
//! ```

pub mod export;
pub mod hist;
pub mod live;
pub mod ring;

pub use hist::{bucket_lower, bucket_of, bucket_upper, Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use ring::{Event, Phase, SpanName};

use ring::ThreadBuffer;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Whether a trace session is currently recording. Checked (one relaxed
/// load) by every instrumentation call before doing anything else.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether tracing is currently enabled.
///
/// Instrumentation helpers check this themselves; call it directly only
/// to skip *preparing* expensive inputs (e.g. formatting a dynamic span
/// name) when tracing is off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

struct Global {
    /// Every thread buffer ever registered (threads are few and
    /// long-lived: the main thread plus pool workers).
    threads: Mutex<Vec<Arc<ThreadBuffer>>>,
    counters: Mutex<HashMap<String, Arc<AtomicU64>>>,
    hists: Mutex<HashMap<String, Arc<Histogram>>>,
    /// Ring capacity for buffers created while the current session runs.
    capacity: AtomicUsize,
    /// Bumped at each session start; span guards refuse to emit their
    /// end event into a different session than their begin.
    generation: AtomicU64,
    epoch: Instant,
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        threads: Mutex::new(Vec::new()),
        counters: Mutex::new(HashMap::new()),
        hists: Mutex::new(HashMap::new()),
        capacity: AtomicUsize::new(TraceConfig::default().events_per_thread),
        generation: AtomicU64::new(0),
        epoch: Instant::now(),
    })
}

pub(crate) fn now_nanos() -> u64 {
    global().epoch.elapsed().as_nanos() as u64
}

pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

std::thread_local! {
    static THREAD_BUFFER: RefCell<Option<Arc<ThreadBuffer>>> = const { RefCell::new(None) };
}

/// Runs `f` with this thread's buffer, registering one on first use.
fn with_buffer(f: impl FnOnce(&ThreadBuffer)) {
    THREAD_BUFFER.with(|slot| {
        let mut slot = slot.borrow_mut();
        let buffer = slot.get_or_insert_with(|| {
            let g = global();
            let buffer = ThreadBuffer::new(g.capacity.load(Ordering::Relaxed));
            lock(&g.threads).push(Arc::clone(&buffer));
            buffer
        });
        f(buffer);
    });
}

/// An active span. Created by [`span`]; emits the matching end event and
/// records the span's duration into the histogram of the same name when
/// dropped.
#[must_use = "a span measures the scope it is alive for; bind it to a variable"]
#[derive(Debug)]
pub struct Span {
    /// `None` when tracing was disabled at entry (the common case).
    open: Option<(SpanName, u64, u64)>, // (name, start_nanos, generation)
}

impl Span {
    /// A span that records nothing (what [`span`] returns when tracing
    /// is off).
    pub fn disabled() -> Span {
        Span { open: None }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((name, start, generation)) = self.open.take() else {
            return;
        };
        if !enabled() || global().generation.load(Ordering::Relaxed) != generation {
            // The session that saw our begin event is gone; an end event
            // now would land unpaired in a different session's buffers.
            return;
        }
        let end = now_nanos();
        with_buffer(|buffer| {
            buffer.push(Event {
                name: name.clone(),
                phase: Phase::End,
                ts_nanos: end,
                tid: buffer.tid,
            });
        });
        record_nanos_keyed(name.as_str(), end.saturating_sub(start));
    }
}

/// Opens a span: emits a begin event now and the end event when the
/// returned guard drops, also recording the duration into the histogram
/// named after the span. When tracing is off this is a relaxed atomic
/// load and a branch.
///
/// Accepts `&'static str` (no allocation) or `String` (dynamic names,
/// e.g. per-artifact spans).
#[inline]
pub fn span(name: impl Into<SpanName>) -> Span {
    if !enabled() {
        return Span::disabled();
    }
    span_slow(name.into())
}

#[inline(never)]
fn span_slow(name: SpanName) -> Span {
    let start = now_nanos();
    let generation = global().generation.load(Ordering::Relaxed);
    with_buffer(|buffer| {
        buffer.push(Event {
            name: name.clone(),
            phase: Phase::Begin,
            ts_nanos: start,
            tid: buffer.tid,
        });
    });
    Span {
        open: Some((name, start, generation)),
    }
}

/// Adds `delta` to the named counter. When tracing is off this is a
/// relaxed atomic load and a branch.
#[inline]
pub fn count(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    count_slow(name, delta);
}

#[inline(never)]
fn count_slow(name: &str, delta: u64) {
    let counter = {
        let mut counters = lock(&global().counters);
        match counters.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(AtomicU64::new(0));
                counters.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    };
    counter.fetch_add(delta, Ordering::Relaxed);
}

/// Records a duration into the named latency histogram. When tracing is
/// off this is a relaxed atomic load and a branch.
#[inline]
pub fn record(name: &str, duration: Duration) {
    if !enabled() {
        return;
    }
    record_nanos_keyed(name, duration.as_nanos() as u64);
}

fn record_nanos_keyed(name: &str, nanos: u64) {
    let hist = {
        let mut hists = lock(&global().hists);
        match hists.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::new());
                hists.insert(name.to_string(), Arc::clone(&h));
                h
            }
        }
    };
    hist.record(nanos);
}

/// Settings for a trace session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Ring capacity per thread, in events. When a thread outruns it the
    /// oldest events are discarded (and counted in
    /// [`Snapshot::dropped_events`]).
    pub events_per_thread: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        // ~40 B/event: a few MB per thread, hours of sweep activity.
        TraceConfig {
            events_per_thread: 65_536,
        }
    }
}

/// Serializes sessions: only one can record at a time (the registry and
/// the enabled flag are process-wide).
static SESSION_LOCK: Mutex<()> = Mutex::new(());

/// An active recording session. Tracing is enabled while it lives;
/// [`Session::finish`] stops recording and returns everything captured.
/// Dropping without finishing stops recording and discards the data.
#[derive(Debug)]
pub struct Session {
    /// Live-registry state at session start; [`Session::finish`] folds
    /// the delta since into the snapshot so always-on instruments (the
    /// `xpd.*` counters) appear in session summaries too.
    live_baseline: live::LiveSnapshot,
    _serial: MutexGuard<'static, ()>,
}

/// Starts a trace session: resets all buffers, counters, and histograms,
/// then enables recording. Blocks if another session is still active
/// (sessions are process-wide). The always-on [`live`] registry is not
/// reset — it is cumulative by contract — but its delta over the
/// session's lifetime is folded into the snapshot at finish.
pub fn session(config: TraceConfig) -> Session {
    let serial = SESSION_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let g = global();
    let capacity = config.events_per_thread.max(16);
    g.capacity.store(capacity, Ordering::Relaxed);
    g.generation.fetch_add(1, Ordering::Relaxed);
    for buffer in lock(&g.threads).iter() {
        buffer.reset(capacity);
    }
    lock(&g.counters).clear();
    lock(&g.hists).clear();
    let live_baseline = live::cumulative();
    ENABLED.store(true, Ordering::Relaxed);
    Session {
        live_baseline,
        _serial: serial,
    }
}

impl Session {
    /// Stops recording and collects everything captured: all thread
    /// rings (events sorted by timestamp), counters, and histograms.
    pub fn finish(self) -> Snapshot {
        ENABLED.store(false, Ordering::Relaxed);
        let g = global();
        let mut events = Vec::new();
        let mut threads = Vec::new();
        let mut dropped = 0u64;
        for buffer in lock(&g.threads).iter() {
            let (mut buffered, buffer_dropped) = buffer.collect();
            if !buffered.is_empty() || buffer_dropped > 0 {
                threads.push((buffer.tid, buffer.thread_name.clone()));
            }
            events.append(&mut buffered);
            dropped += buffer_dropped;
        }
        // Stable by timestamp: per-thread order (already monotonic) is
        // preserved for equal stamps.
        events.sort_by_key(|e| e.ts_nanos);
        threads.sort_by_key(|(tid, _)| *tid);

        let mut counters: Vec<(String, u64)> = lock(&g.counters)
            .iter()
            .map(|(name, c)| (name.clone(), c.load(Ordering::Relaxed)))
            .collect();
        let mut histograms: Vec<(String, HistogramSnapshot)> = lock(&g.hists)
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect();

        // Fold in what the always-on registry recorded while this
        // session ran. Instruments that live there (a daemon's request
        // counters) would otherwise be invisible to `--trace` runs;
        // delta-vs-baseline keeps sessions isolated from each other and
        // from pre-session history.
        let live_delta = live::since(&self.live_baseline);
        for (name, delta) in live_delta.counters {
            if delta == 0 {
                continue;
            }
            match counters.iter_mut().find(|(n, _)| *n == name) {
                Some((_, v)) => *v += delta,
                None => counters.push((name, delta)),
            }
        }
        for (name, delta) in live_delta.histograms {
            if delta.count == 0 {
                continue;
            }
            match histograms.iter_mut().find(|(n, _)| *n == name) {
                Some((_, h)) => *h = h.merge(&delta),
                None => histograms.push((name, delta)),
            }
        }
        counters.sort();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));

        Snapshot {
            events,
            threads,
            counters,
            histograms,
            dropped_events: dropped,
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::Relaxed);
    }
}

/// Everything one [`Session`] captured.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// All span events, sorted by timestamp.
    pub events: Vec<Event>,
    /// `(tid, thread name)` for every thread that recorded anything.
    pub threads: Vec<(u64, String)>,
    /// Named counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Named latency histograms, sorted by name. Every span name has one
    /// (its duration distribution); explicit [`record`] calls add more.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Events discarded because a thread outran its ring buffer.
    pub dropped_events: u64,
}

impl Snapshot {
    /// The value of a named counter, if it was ever incremented.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The histogram recorded under `name` (span or explicit), if any.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_instrumentation_records_nothing() {
        // No session: everything must be inert.
        assert!(!enabled());
        let _span = span("test.noop");
        count("test.noop", 5);
        record("test.noop", Duration::from_millis(1));
        let snapshot = session(TraceConfig::default()).finish();
        assert!(snapshot.counter("test.noop").is_none());
        assert!(snapshot.histogram("test.noop").is_none());
    }

    #[test]
    fn session_captures_spans_counters_and_histograms() {
        let s = session(TraceConfig::default());
        {
            let _outer = span("test.outer");
            {
                let _inner = span("test.inner");
                count("test.widgets", 2);
            }
            count("test.widgets", 1);
        }
        record("test.latency", Duration::from_micros(100));
        let snapshot = s.finish();
        assert_eq!(snapshot.counter("test.widgets"), Some(3));
        assert_eq!(snapshot.histogram("test.outer").unwrap().count, 1);
        assert_eq!(snapshot.histogram("test.inner").unwrap().count, 1);
        assert_eq!(snapshot.histogram("test.latency").unwrap().count, 1);
        // Begin/end pairs for both spans, properly nested.
        let names: Vec<(&str, Phase)> = snapshot
            .events
            .iter()
            .map(|e| (e.name.as_str(), e.phase))
            .collect();
        assert_eq!(
            names,
            vec![
                ("test.outer", Phase::Begin),
                ("test.inner", Phase::Begin),
                ("test.inner", Phase::End),
                ("test.outer", Phase::End),
            ]
        );
        assert_eq!(snapshot.dropped_events, 0);
    }

    #[test]
    fn sessions_isolate_their_data() {
        let first = session(TraceConfig::default());
        count("test.iso", 7);
        let snapshot = first.finish();
        assert_eq!(snapshot.counter("test.iso"), Some(7));

        let second = session(TraceConfig::default());
        count("test.iso2", 1);
        let snapshot = second.finish();
        assert!(snapshot.counter("test.iso").is_none(), "counters reset");
        assert_eq!(snapshot.counter("test.iso2"), Some(1));
    }

    #[test]
    fn span_crossing_session_end_stays_balanced() {
        let s = session(TraceConfig::default());
        let crossing = span("test.crossing");
        let snapshot = s.finish();
        // Begin was captured, end hadn't happened yet.
        assert_eq!(snapshot.events.len(), 1);
        assert_eq!(snapshot.events[0].phase, Phase::Begin);

        // Dropping after the session must not leak an end event into the
        // next session.
        let next = session(TraceConfig::default());
        drop(crossing);
        let snapshot = next.finish();
        assert!(
            snapshot.events.is_empty(),
            "stale end event leaked: {:?}",
            snapshot.events
        );
    }

    #[test]
    fn worker_threads_get_their_own_tid() {
        let s = session(TraceConfig::default());
        let _main = span("test.main");
        std::thread::spawn(|| {
            let _worker = span("test.worker");
        })
        .join()
        .unwrap();
        let snapshot = s.finish();
        let main_tid = snapshot
            .events
            .iter()
            .find(|e| e.name.as_str() == "test.main")
            .unwrap()
            .tid;
        let worker_tid = snapshot
            .events
            .iter()
            .find(|e| e.name.as_str() == "test.worker")
            .unwrap()
            .tid;
        assert_ne!(main_tid, worker_tid);
        assert_eq!(snapshot.threads.len(), 2);
    }

    #[test]
    fn sessions_fold_in_the_live_registry_delta() {
        let c = live::counter("test.live.fold");
        let h = live::histogram("test.live.fold_lat");
        c.add(100); // pre-session history must not leak in
        let s = session(TraceConfig::default());
        c.add(7);
        h.record_nanos(2_000);
        count("test.fold.session_only", 1);
        let snapshot = s.finish();
        assert_eq!(snapshot.counter("test.live.fold"), Some(7));
        assert_eq!(snapshot.histogram("test.live.fold_lat").unwrap().count, 1);
        assert_eq!(snapshot.counter("test.fold.session_only"), Some(1));

        // The next session starts from a fresh baseline.
        let s = session(TraceConfig::default());
        let snapshot = s.finish();
        assert_eq!(snapshot.counter("test.live.fold"), None);
    }

    #[test]
    fn live_name_colliding_with_session_counter_sums_once() {
        let c = live::counter("test.fold.shared");
        let s = session(TraceConfig::default());
        count("test.fold.shared", 2);
        c.add(3);
        let snapshot = s.finish();
        assert_eq!(snapshot.counter("test.fold.shared"), Some(5));
    }

    #[test]
    fn ring_overflow_surfaces_in_dropped_events() {
        let s = session(TraceConfig {
            events_per_thread: 16,
        });
        for _ in 0..64 {
            let _span = span("test.churn");
        }
        let snapshot = s.finish();
        assert_eq!(snapshot.events.len(), 16);
        assert_eq!(snapshot.dropped_events, 2 * 64 - 16);
        // The histogram still saw every span — only raw events drop.
        assert_eq!(snapshot.histogram("test.churn").unwrap().count, 64);
    }
}
