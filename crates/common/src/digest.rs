//! FNV-1a content digests: the one hashing code path behind every
//! configuration fingerprint in the workspace.
//!
//! The `xp` driver journals artifact results keyed by an FNV-1a digest
//! of the sweep plan (`--resume` freshness), and the `xpd` daemon's
//! content-addressed result store uses the same digests as file names.
//! Both build on this module, so a digest computed by one layer is
//! meaningful to the other — there is exactly one definition of "the
//! configuration fingerprint" in the codebase.
//!
//! FNV-1a is not cryptographic; it is a fast, stable, dependency-free
//! fingerprint. Digests gate *freshness* (is this cached result still
//! the same configuration?), not *integrity* against an adversary.
//!
//! # Examples
//!
//! ```
//! use common::digest::Fnv1a;
//!
//! let mut h = Fnv1a::new();
//! h.update("32-GPM 2x-BW\n");
//! let digest = h.hex();
//! assert_eq!(digest.len(), 16);
//! assert_eq!(digest, Fnv1a::of("32-GPM 2x-BW\n").hex());
//! ```

/// The FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One FNV-1a step: folds `bytes` into the running state `h`.
pub fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// An incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a {
    state: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a { state: FNV_OFFSET }
    }

    /// A hasher that has already absorbed `text`.
    pub fn of(text: &str) -> Self {
        let mut h = Fnv1a::new();
        h.update(text);
        h
    }

    /// Folds a string into the digest.
    pub fn update(&mut self, text: &str) -> &mut Self {
        self.state = fnv1a(self.state, text.as_bytes());
        self
    }

    /// The current 64-bit state.
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// The digest rendered as 16 lowercase hex digits — the form used
    /// in journals, manifests, and store file names.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.state)
    }
}

/// The content checksum the `xpd` result store embeds in every payload
/// file header and journal `put` record: FNV-1a over the payload bytes,
/// rendered as [`Fnv1a::hex`]. A reader recomputes this over the bytes
/// it actually loaded and quarantines the file on mismatch, so a torn
/// or bit-flipped payload is *detected* rather than served.
///
/// Like every digest in this module it guards against accidental
/// corruption (torn writes, disk rot), not adversaries.
pub fn payload_checksum(payload: &str) -> String {
    Fnv1a::of(payload).hex()
}

/// Whether `s` looks like a digest produced by [`Fnv1a::hex`]: exactly
/// 16 lowercase hex digits. The `xpd` store uses this to recognize its
/// own files when rebuilding the index from a directory listing.
pub fn is_hex_digest(s: &str) -> bool {
    s.len() == 16
        && s.bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(Fnv1a::new().finish(), FNV_OFFSET);
        assert_eq!(Fnv1a::of("a").finish(), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Fnv1a::of("foobar").finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv1a::new();
        h.update("foo").update("bar");
        assert_eq!(h.finish(), Fnv1a::of("foobar").finish());
    }

    #[test]
    fn hex_form_is_16_lowercase_digits() {
        let hex = Fnv1a::of("fig6").hex();
        assert_eq!(hex.len(), 16);
        assert!(is_hex_digest(&hex), "{hex}");
        assert!(!is_hex_digest("xyz"));
        assert!(!is_hex_digest("ABCDEF0123456789"));
        assert!(!is_hex_digest("0123456789abcde"));
    }

    #[test]
    fn payload_checksum_is_the_hex_fnv_of_the_bytes() {
        let sum = payload_checksum("{\n  \"id\": \"fig6\"\n}\n");
        assert!(is_hex_digest(&sum));
        assert_eq!(sum, Fnv1a::of("{\n  \"id\": \"fig6\"\n}\n").hex());
        assert_ne!(sum, payload_checksum("{\n  \"id\": \"fig6\"\n}"));
    }

    #[test]
    fn digest_is_order_sensitive() {
        assert_ne!(Fnv1a::of("ab").finish(), Fnv1a::of("ba").finish());
    }
}
