//! Small statistics helpers used when summarizing experiments.
//!
//! The paper reports arithmetic means (energy growth), geometric means
//! (Fig. 4b's "GeoMean Error"), and mean absolute error (9.4% MAE across the
//! validation suite). These helpers centralize that math.

/// Arithmetic mean of a slice. Returns `None` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(common::stats::mean(&[1.0, 2.0, 3.0]), Some(2.0));
/// assert_eq!(common::stats::mean(&[]), None);
/// ```
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Geometric mean of a slice of strictly positive values.
///
/// Returns `None` if the slice is empty or any value is not strictly
/// positive (the geometric mean is undefined there).
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Mean of absolute values — the paper's "mean absolute error" when fed
/// relative errors. Returns `None` for an empty slice.
pub fn mean_abs(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().map(|v| v.abs()).sum::<f64>() / values.len() as f64)
    }
}

/// Geometric mean of absolute values, ignoring zeros (which would collapse
/// the product); mirrors the "GeoMean Error" bar in Fig. 4b.
pub fn geomean_abs(values: &[f64]) -> Option<f64> {
    let abs: Vec<f64> = values
        .iter()
        .map(|v| v.abs())
        .filter(|&v| v > 0.0)
        .collect();
    geomean(&abs)
}

/// Relative error of `modeled` against `measured`, as a signed fraction.
///
/// Positive means the model over-predicts. Returns `None` when `measured`
/// is zero (relative error undefined).
pub fn relative_error(modeled: f64, measured: f64) -> Option<f64> {
    if measured == 0.0 {
        None
    } else {
        Some((modeled - measured) / measured)
    }
}

/// Population standard deviation. Returns `None` for an empty slice.
pub fn std_dev(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64;
    Some(var.sqrt())
}

/// Maximum of a slice by value. Returns `None` for an empty slice or if any
/// value is NaN.
pub fn max(values: &[f64]) -> Option<f64> {
    if values.iter().any(|v| v.is_nan()) {
        return None;
    }
    values.iter().copied().fold(None, |acc, v| {
        Some(match acc {
            None => v,
            Some(a) => a.max(v),
        })
    })
}

/// Minimum of a slice by value. Returns `None` for an empty slice or if any
/// value is NaN.
pub fn min(values: &[f64]) -> Option<f64> {
    if values.iter().any(|v| v.is_nan()) {
        return None;
    }
    values.iter().copied().fold(None, |acc, v| {
        Some(match acc {
            None => v,
            Some(a) => a.min(v),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn geomean_basics() {
        let g = geomean(&[1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), None);
        assert_eq!(geomean(&[1.0, 0.0]), None);
        assert_eq!(geomean(&[1.0, -2.0]), None);
    }

    #[test]
    fn geomean_is_scale_covariant() {
        let vals = [0.5, 2.0, 8.0];
        let scaled: Vec<f64> = vals.iter().map(|v| v * 3.0).collect();
        let g1 = geomean(&vals).unwrap();
        let g2 = geomean(&scaled).unwrap();
        assert!((g2 / g1 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_abs_mixes_signs() {
        assert_eq!(mean_abs(&[-2.0, 2.0]), Some(2.0));
        assert_eq!(mean_abs(&[]), None);
    }

    #[test]
    fn geomean_abs_skips_zeros() {
        let g = geomean_abs(&[-1.0, 4.0, 0.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    fn relative_error_signs() {
        assert_eq!(relative_error(110.0, 100.0), Some(0.1));
        assert_eq!(relative_error(90.0, 100.0), Some(-0.1));
        assert_eq!(relative_error(1.0, 0.0), None);
    }

    #[test]
    fn std_dev_basics() {
        let s = std_dev(&[2.0, 2.0, 2.0]).unwrap();
        assert!(s.abs() < 1e-12);
        let s = std_dev(&[1.0, 3.0]).unwrap();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_basics() {
        assert_eq!(max(&[1.0, 5.0, 3.0]), Some(5.0));
        assert_eq!(min(&[1.0, 5.0, 3.0]), Some(1.0));
        assert_eq!(max(&[]), None);
        assert_eq!(max(&[f64::NAN, 1.0]), None);
    }
}
