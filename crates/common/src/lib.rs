#![deny(missing_docs)]

//! Shared primitives for the multi-module GPU energy-efficiency study.
//!
//! This crate holds the strongly-typed physical quantities (energy, power,
//! time, bandwidth, ...) and hardware identifiers used throughout the
//! workspace. Newtypes keep joules from mixing with watts and GPM indices
//! from mixing with SM indices at compile time (see the paper's Eq. 4/5
//! plumbing, which is all unit arithmetic).
//!
//! # Examples
//!
//! ```
//! use common::units::{Energy, Power, Time};
//!
//! let e = Power::from_watts(235.0) * Time::from_secs(2.0);
//! assert_eq!(e, Energy::from_joules(470.0));
//! assert_eq!(e / Time::from_secs(2.0), Power::from_watts(235.0));
//! ```

pub mod digest;
pub mod ids;
pub mod json;
pub mod proto;
pub mod stats;
pub mod table;
pub mod units;

pub use ids::{CtaId, GpmId, KernelId, PageId, SmId, WarpId};
pub use units::{Bandwidth, Bytes, Cycles, Energy, EnergyPerBit, Frequency, Power, Time};
