//! A small, dependency-free JSON module: a [`Json`] value type, an
//! escaping-correct writer, and a strict parser.
//!
//! The workspace is offline (no serde), yet the experiment layer needs a
//! machine-readable result format: every artifact the `xp` driver runs
//! serializes to JSON through this module, and the golden snapshot tests
//! parse the output back to assert the schema round-trips.
//!
//! Design notes:
//!
//! * Objects preserve insertion order (a `Vec` of pairs, not a map), so
//!   serialized output is deterministic and diffs stay readable.
//! * Numbers are `f64`. The writer uses Rust's shortest-round-trip float
//!   formatting, so `parse(render(x)) == x` exactly for finite values;
//!   non-finite values serialize as `null` (JSON has no NaN/Infinity).
//! * The parser is strict RFC 8259: no trailing commas, no comments, no
//!   leading zeros, one top-level value, nothing after it. Errors carry
//!   the byte offset of the problem.
//!
//! # Examples
//!
//! ```
//! use common::json::Json;
//!
//! let mut point = Json::object();
//! point.insert("gpms", 32.0);
//! point.insert("energy_ratio", 1.94);
//! let text = point.render();
//! assert_eq!(text, r#"{"gpms":32,"energy_ratio":1.94}"#);
//! assert_eq!(Json::parse(&text).unwrap(), point);
//! ```

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (always an `f64`; JSON has a single number type).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; pairs keep insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// An empty array.
    pub fn array() -> Json {
        Json::Array(Vec::new())
    }

    /// A string value (convenience for `Json::String(s.into())`).
    pub fn str(s: impl Into<String>) -> Json {
        Json::String(s.into())
    }

    /// Appends a key/value pair to an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object — inserting into a non-object
    /// is a programming error, not a data error.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Object(pairs) => pairs.push((key.into(), value.into())),
            other => panic!("insert on non-object Json: {other:?}"),
        }
        self
    }

    /// Appends an element to an array.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an array.
    pub fn push(&mut self, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Array(items) => items.push(value.into()),
            other => panic!("push on non-array Json: {other:?}"),
        }
        self
    }

    /// The value of an object key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// The keys of an object, in insertion order (empty for non-objects).
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Object(pairs) => pairs.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes with two-space indentation, one key or element per
    /// line — the on-disk format of the `xp` result files.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => write_number(*n, out),
            Json::String(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_string(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Parses one JSON document. Strict: exactly one value, nothing but
    /// whitespace after it.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing content after JSON value"));
        }
        Ok(value)
    }

    /// Parses a JSON-lines document: one value per line, blank lines
    /// skipped. Used for append-only journals, where each record is
    /// written (and fsync'd) independently so a killed run loses at
    /// most its last line.
    pub fn parse_jsonl(text: &str) -> Result<Vec<Json>, JsonError> {
        let mut values = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            values.push(Json::parse(line)?);
        }
        Ok(values)
    }

    /// Renders one JSON-lines record: the compact form plus a newline
    /// (compact rendering never contains raw newlines, so one record is
    /// always exactly one line).
    pub fn render_jsonl_line(&self) -> String {
        format!("{}\n", self.render())
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; null is the conventional stand-in.
        out.push_str("null");
        return;
    }
    // Rust's float Display is shortest-round-trip and never uses
    // exponent notation, so the output is always a valid JSON number
    // that parses back to the identical f64.
    out.push_str(&n.to_string());
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Nesting beyond this depth is rejected (guards the recursive parser's
/// stack against adversarial input).
const MAX_DEPTH: usize = 256;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.error(format!("unexpected character '{}'", c as char))),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: must be followed by \uXXXX low surrogate.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.error("unpaired low surrogate"));
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            s.push(c);
                            // hex4 leaves pos past the last digit; undo the
                            // unconditional advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("peeked non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits, returning the code unit; leaves
    /// `pos` after the last digit.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.error("expected four hex digits in \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: '0' alone or a nonzero digit followed by more.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("invalid number")),
        }
        if matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.error("leading zero in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digits after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digits in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error("number out of range"))
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Number(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Number(v as f64)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Number(v as f64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Number(v as f64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Number(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::String(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::String(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Array(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_round_trips_and_skips_blank_lines() {
        let mut a = Json::object();
        a.insert("artifact", "fig2").insert("status", "ok");
        let mut b = Json::object();
        b.insert("artifact", "fig6").insert("status", "failed");
        let text = format!("{}\n{}", a.render_jsonl_line(), b.render_jsonl_line());
        let back = Json::parse_jsonl(&text).unwrap();
        assert_eq!(back, vec![a, b]);
        assert_eq!(Json::parse_jsonl("").unwrap(), Vec::<Json>::new());
        assert!(Json::parse_jsonl("{\"x\": }\n").is_err());
    }

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Number(1.0).render(), "1");
        assert_eq!(Json::Number(1.5).render(), "1.5");
        assert_eq!(Json::Number(-0.25).render(), "-0.25");
        assert_eq!(Json::Number(f64::NAN).render(), "null");
        assert_eq!(Json::Number(f64::INFINITY).render(), "null");
        assert_eq!(Json::str("hi").render(), "\"hi\"");
    }

    #[test]
    fn escapes_strings_correctly() {
        let s = Json::str("a\"b\\c\nd\te\u{08}\u{0c}\r\u{1f}ü→");
        let rendered = s.render();
        assert_eq!(rendered, "\"a\\\"b\\\\c\\nd\\te\\b\\f\\r\\u001fü→\"");
        assert_eq!(Json::parse(&rendered).unwrap(), s);
    }

    #[test]
    fn objects_preserve_order() {
        let mut o = Json::object();
        o.insert("z", 1.0).insert("a", 2.0);
        assert_eq!(o.render(), r#"{"z":1,"a":2}"#);
        assert_eq!(o.keys(), vec!["z", "a"]);
        assert_eq!(o.get("a").and_then(Json::as_f64), Some(2.0));
        assert!(o.get("missing").is_none());
    }

    #[test]
    fn pretty_printing_round_trips() {
        let mut o = Json::object();
        o.insert("rows", Json::Array(vec![Json::Number(1.0), Json::str("x")]));
        o.insert("empty", Json::array());
        o.insert("nested", {
            let mut n = Json::object();
            n.insert("ok", true);
            n
        });
        let pretty = o.render_pretty();
        assert!(pretty.contains("  \"rows\": [\n"));
        assert!(pretty.contains("\"empty\": []"));
        assert!(pretty.ends_with("}\n"));
        assert_eq!(Json::parse(&pretty).unwrap(), o);
    }

    #[test]
    fn parses_the_grammar() {
        let v = Json::parse(r#" { "a": [1, 2.5, -3e2, true, null], "b": {"c": "d"} } "#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 5);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(
            v.get("b").unwrap().get("c").and_then(Json::as_str),
            Some("d")
        );
    }

    #[test]
    fn parses_unicode_escapes_and_surrogates() {
        assert_eq!(Json::parse(r#""é→""#).unwrap(), Json::str("é→"));
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::str("😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "tru",
            "01",
            "1.",
            ".5",
            "+1",
            "1e",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "[1] x",
            "\"a",
            "{'a':1}",
            "nul",
            "[,]",
            "{,}",
            "1 2",
            "\"\u{01}\"",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for n in [
            0.0,
            -0.0,
            1.0,
            1e-12,
            123456789.123456,
            f64::MAX,
            f64::MIN_POSITIVE,
        ] {
            let rendered = Json::Number(n).render();
            let back = Json::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), n.to_bits(), "{n} -> {rendered}");
        }
    }

    #[test]
    fn error_reports_offset() {
        let err = Json::parse("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }
}
