//! Minimal fixed-width text table rendering for experiment output.
//!
//! The experiment binaries print the same rows the paper's tables and figure
//! series report; this renderer keeps that output aligned and diff-friendly
//! without pulling in a formatting dependency.

use std::fmt::Write as _;

/// A simple text table: a header row plus data rows, rendered with
/// column-width alignment.
///
/// # Examples
///
/// ```
/// use common::table::TextTable;
///
/// let mut t = TextTable::new(["config", "EDPSE (%)"]);
/// t.row(["2-GPM", "94.0"]);
/// t.row(["32-GPM", "36.0"]);
/// let s = t.render();
/// assert!(s.contains("2-GPM"));
/// assert!(s.lines().count() >= 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header cells.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row. Rows shorter than the header are padded with
    /// empty cells; longer rows extend the table width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as RFC-4180-style CSV (quoting cells containing
    /// commas, quotes, or newlines), for piping experiment output into
    /// plotting tools.
    pub fn render_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let mut write_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| quote(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.header);
        for row in &self.rows {
            write_row(row);
        }
        out
    }

    /// Renders the table to a string with a separator under the header.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }

        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i + 1 == widths.len() {
                    let _ = write!(out, "{cell}");
                } else {
                    let _ = write!(out, "{cell:<w$}  ");
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total.max(1)));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a fraction as a percentage with one decimal, e.g. `0.368` →
/// `"36.8"`.
pub fn pct(frac: f64) -> String {
    format!("{:.1}", frac * 100.0)
}

/// Formats a ratio with two decimals, e.g. speedups (`"1.87"`).
pub fn ratio(r: f64) -> String {
    format!("{r:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["a", "long-header"]);
        t.row(["xxxxxx", "1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // Header and row share the first column width.
        assert!(lines[0].starts_with("a     "));
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["1"]);
        let s = t.render();
        assert!(s.contains('1'));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn handles_rows_wider_than_header() {
        let mut t = TextTable::new(["a"]);
        t.row(["1", "2", "3"]);
        let s = t.render();
        assert!(s.contains('3'));
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new(["h1", "h2"]);
        let s = t.render();
        assert_eq!(s.lines().count(), 2);
        assert!(t.is_empty());
    }

    #[test]
    fn csv_quotes_only_when_needed() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["plain", "1"]);
        t.row(["with,comma", "say \"hi\""]);
        let csv = t.render_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with,comma\",\"say \"\"hi\"\"\"");
    }

    #[test]
    fn helpers_format() {
        assert_eq!(pct(0.368), "36.8");
        assert_eq!(ratio(1.868), "1.87");
    }
}
