//! Hardware and workload identifiers.
//!
//! Plain `usize` indices invite cross-wiring a GPM index into an SM array;
//! these newtypes make the simulator's addressing explicit. All ids are
//! cheap `Copy` types ordered by their raw value.

use std::fmt;

/// Identifies one GPU module (GPM) in a multi-module GPU (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GpmId(pub u16);

impl GpmId {
    /// Creates a GPM id.
    #[inline]
    pub fn new(idx: u16) -> Self {
        GpmId(idx)
    }

    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GpmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GPM{}", self.0)
    }
}

/// Identifies one streaming multiprocessor, globally across the GPU.
///
/// The SM knows which GPM it lives on and its local slot within that GPM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SmId {
    /// The module housing this SM.
    pub gpm: GpmId,
    /// The SM slot inside the module.
    pub local: u16,
}

impl SmId {
    /// Creates an SM id from a module and a local slot.
    #[inline]
    pub fn new(gpm: GpmId, local: u16) -> Self {
        SmId { gpm, local }
    }

    /// Global flat index given a fixed number of SMs per GPM.
    #[inline]
    pub fn flat_index(self, sms_per_gpm: usize) -> usize {
        self.gpm.index() * sms_per_gpm + self.local as usize
    }
}

impl fmt::Display for SmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:SM{}", self.gpm, self.local)
    }
}

/// Identifies a kernel launch within a workload trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct KernelId(pub u32);

impl KernelId {
    /// Creates a kernel id.
    #[inline]
    pub fn new(idx: u32) -> Self {
        KernelId(idx)
    }

    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for KernelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "K{}", self.0)
    }
}

/// Identifies a cooperative thread array (thread block) within a kernel grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CtaId(pub u32);

impl CtaId {
    /// Creates a CTA id.
    #[inline]
    pub fn new(idx: u32) -> Self {
        CtaId(idx)
    }

    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CtaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CTA{}", self.0)
    }
}

/// Identifies a warp within a CTA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WarpId(pub u32);

impl WarpId {
    /// Creates a warp id.
    #[inline]
    pub fn new(idx: u32) -> Self {
        WarpId(idx)
    }

    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for WarpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "W{}", self.0)
    }
}

/// Identifies a virtual memory page (used by first-touch placement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(pub u64);

impl PageId {
    /// Creates a page id from a page number.
    #[inline]
    pub fn new(num: u64) -> Self {
        PageId(num)
    }

    /// Page number containing `addr` for the given page size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero.
    #[inline]
    pub fn containing(addr: u64, page_size: u64) -> Self {
        assert!(page_size > 0, "page size must be non-zero");
        PageId(addr / page_size)
    }

    /// Returns the raw page number.
    #[inline]
    pub fn number(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sm_flat_index_layout() {
        let sm = SmId::new(GpmId::new(2), 5);
        assert_eq!(sm.flat_index(16), 2 * 16 + 5);
        assert_eq!(SmId::new(GpmId::new(0), 0).flat_index(16), 0);
    }

    #[test]
    fn page_containing_addr() {
        let p = PageId::containing(0x1_0000, 64 * 1024);
        assert_eq!(p.number(), 1);
        assert_eq!(PageId::containing(0xFFFF, 64 * 1024).number(), 0);
        assert_eq!(PageId::containing(0x2_0000, 64 * 1024).number(), 2);
    }

    #[test]
    #[should_panic(expected = "page size")]
    fn page_zero_size_panics() {
        let _ = PageId::containing(0x1000, 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", GpmId::new(3)), "GPM3");
        assert_eq!(format!("{}", SmId::new(GpmId::new(1), 7)), "GPM1:SM7");
        assert_eq!(format!("{}", KernelId::new(4)), "K4");
        assert_eq!(format!("{}", CtaId::new(9)), "CTA9");
        assert_eq!(format!("{}", WarpId::new(2)), "W2");
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(GpmId::new(1) < GpmId::new(2));
        assert!(CtaId::new(10) > CtaId::new(9));
    }
}
