//! Wire protocol of the `xpd` what-if sweep daemon: newline-delimited
//! JSON over a Unix socket or TCP.
//!
//! Each request is one compact JSON object on one line; each response
//! is one compact JSON object on one line. Artifact payloads travel as
//! JSON *strings* (the exact pretty-rendered bytes the `xp run --out`
//! driver would have written, trailing newline included), so a client
//! that prints the payload verbatim is byte-identical to `xp run`
//! output — the property the CI smoke job asserts.
//!
//! The structs here are the single source of truth for field names on
//! both sides: the `xpd` server parses [`QueryRequest`] and renders
//! [`QueryResponse`]; the `xp query` client does the reverse. Keeping
//! them in `common` (below both crates) avoids a dependency cycle
//! between the daemon and the experiment harness.

use crate::json::Json;

/// What a request asks the daemon to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOp {
    /// Evaluate (or serve from the store) one artifact query.
    Query,
    /// Report live server counters: hits, misses, queue depth, store
    /// size.
    Stats,
    /// Report serving health for readiness probes: whether the daemon
    /// is draining, queue depth, in-flight count, and store occupancy
    /// (a trimmed, stable subset of `stats`).
    Health,
    /// Report the always-on telemetry registry — cumulative counters,
    /// windowed rates, and latency quantiles — as JSON or Prometheus
    /// text exposition (see [`MetricsFormat`]).
    Metrics,
    /// Stop accepting connections and shut the daemon down cleanly.
    Shutdown,
}

impl RequestOp {
    /// The op's wire name (also used as a label in logs and metrics).
    pub fn as_str(self) -> &'static str {
        match self {
            RequestOp::Query => "query",
            RequestOp::Stats => "stats",
            RequestOp::Health => "health",
            RequestOp::Metrics => "metrics",
            RequestOp::Shutdown => "shutdown",
        }
    }
}

/// How a [`RequestOp::Metrics`] response should be rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsFormat {
    /// A structured JSON object in the response's `metrics` field.
    #[default]
    Json,
    /// Prometheus text exposition (version 0.0.4), carried as a JSON
    /// string in the response's `metrics` field — printing it verbatim
    /// yields a scrapeable document.
    Prometheus,
}

impl MetricsFormat {
    fn as_str(self) -> &'static str {
        match self {
            MetricsFormat::Json => "json",
            MetricsFormat::Prometheus => "prometheus",
        }
    }
}

/// One client request: an operation, and for [`RequestOp::Query`] the
/// artifact id plus any `key=value` config deltas.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// The requested operation.
    pub op: RequestOp,
    /// Artifact id (`fig6`, `fig2`, ...); empty for stats/shutdown.
    pub artifact: String,
    /// Config deltas applied to every configuration in the artifact's
    /// sweep plan (`("bw", "4x")`, `("gpms", "16")`, ...). Order is
    /// irrelevant; servers normalize by key before digesting.
    pub sets: Vec<(String, String)>,
    /// Time budget for answering this query, in milliseconds from the
    /// moment the server parses it. Queued work whose deadline expires
    /// before evaluation starts is answered `timeout`, never silently
    /// computed. `None` waits indefinitely. Excluded from the content
    /// digest: the answer does not depend on it.
    pub deadline_ms: Option<u64>,
    /// Whether the server should attach a per-phase timing breakdown
    /// (`queue_wait`, `batch_linger`, `eval`, `store_write`) to the
    /// answer. Like `deadline_ms`, excluded from the content digest —
    /// the payload bytes are identical either way.
    pub timing: bool,
    /// Rendering for [`RequestOp::Metrics`] responses; ignored by every
    /// other op.
    pub format: MetricsFormat,
}

impl QueryRequest {
    fn bare(op: RequestOp) -> Self {
        QueryRequest {
            op,
            artifact: String::new(),
            sets: Vec::new(),
            deadline_ms: None,
            timing: false,
            format: MetricsFormat::Json,
        }
    }

    /// A plain artifact query with no config deltas.
    pub fn query(artifact: impl Into<String>) -> Self {
        QueryRequest {
            artifact: artifact.into(),
            ..QueryRequest::bare(RequestOp::Query)
        }
    }

    /// Adds one `key=value` config delta.
    pub fn with_set(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.sets.push((key.into(), value.into()));
        self
    }

    /// Sets the query's time budget in milliseconds.
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Asks the server for a per-phase timing breakdown.
    pub fn with_timing(mut self) -> Self {
        self.timing = true;
        self
    }

    /// A stats request.
    pub fn stats() -> Self {
        QueryRequest::bare(RequestOp::Stats)
    }

    /// A health (readiness) request.
    pub fn health() -> Self {
        QueryRequest::bare(RequestOp::Health)
    }

    /// A metrics request in the given rendering.
    pub fn metrics(format: MetricsFormat) -> Self {
        QueryRequest {
            format,
            ..QueryRequest::bare(RequestOp::Metrics)
        }
    }

    /// A shutdown request.
    pub fn shutdown() -> Self {
        QueryRequest::bare(RequestOp::Shutdown)
    }

    /// Serializes the request to its wire form.
    pub fn to_json(&self) -> Json {
        let mut o = Json::object();
        o.insert("op", self.op.as_str());
        if self.op == RequestOp::Query {
            o.insert("artifact", self.artifact.as_str());
            if !self.sets.is_empty() {
                let mut sets = Json::object();
                for (k, v) in &self.sets {
                    sets.insert(k.as_str(), v.as_str());
                }
                o.insert("set", sets);
            }
            if let Some(ms) = self.deadline_ms {
                o.insert("deadline_ms", ms as f64);
            }
            if self.timing {
                o.insert("timing", true);
            }
        }
        if self.op == RequestOp::Metrics && self.format != MetricsFormat::Json {
            o.insert("format", self.format.as_str());
        }
        o
    }

    /// Parses a request from its wire form, validating the op and the
    /// per-op required fields.
    pub fn from_json(j: &Json) -> Result<QueryRequest, String> {
        let op = match j.get("op").and_then(Json::as_str) {
            Some("query") | None => RequestOp::Query,
            Some("stats") => return Ok(QueryRequest::stats()),
            Some("health") => return Ok(QueryRequest::health()),
            Some("metrics") => {
                let format = match j.get("format").and_then(Json::as_str) {
                    None | Some("json") => MetricsFormat::Json,
                    Some("prometheus") => MetricsFormat::Prometheus,
                    Some(other) => return Err(format!("unknown metrics format {other:?}")),
                };
                return Ok(QueryRequest::metrics(format));
            }
            Some("shutdown") => return Ok(QueryRequest::shutdown()),
            Some(other) => return Err(format!("unknown op {other:?}")),
        };
        let artifact = j
            .get("artifact")
            .and_then(Json::as_str)
            .ok_or_else(|| "query request missing `artifact`".to_string())?;
        if artifact.is_empty() {
            return Err("query request has empty `artifact`".to_string());
        }
        let mut sets = Vec::new();
        if let Some(set) = j.get("set") {
            let pairs = set
                .as_object()
                .ok_or_else(|| "`set` must be an object of key/value strings".to_string())?;
            for (k, v) in pairs {
                let v = v
                    .as_str()
                    .ok_or_else(|| format!("`set.{k}` must be a string"))?;
                if sets.iter().any(|(prev, _): &(String, String)| prev == k) {
                    return Err(format!("duplicate `set` key {k:?}"));
                }
                sets.push((k.clone(), v.to_string()));
            }
        }
        let deadline_ms = match j.get("deadline_ms") {
            None => None,
            Some(v) => {
                let ms = v
                    .as_f64()
                    .filter(|ms| ms.is_finite() && *ms >= 1.0 && ms.fract() == 0.0)
                    .ok_or_else(|| {
                        "`deadline_ms` must be a positive integer of milliseconds".to_string()
                    })?;
                Some(ms as u64)
            }
        };
        let timing = match j.get("timing") {
            None => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| "`timing` must be a boolean".to_string())?,
        };
        Ok(QueryRequest {
            op,
            artifact: artifact.to_string(),
            sets,
            deadline_ms,
            timing,
            format: MetricsFormat::Json,
        })
    }
}

/// Where an answered query's payload came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Served warm from the content-addressed disk store.
    Store,
    /// Computed by scheduling the query through the sweep executor
    /// (includes requests that joined another client's in-flight
    /// computation — the digest was still executed exactly once).
    Computed,
}

impl Source {
    fn as_str(self) -> &'static str {
        match self {
            Source::Store => "store",
            Source::Computed => "computed",
        }
    }
}

/// One server response.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// `"ok"`, `"busy"` (queue full — retry later), `"timeout"` (the
    /// request's deadline expired before evaluation started), or
    /// `"error"`.
    pub status: String,
    /// The query's content digest (ok responses).
    pub digest: Option<String>,
    /// Where the payload came from (ok query responses).
    pub source: Option<Source>,
    /// The artifact payload: the exact bytes `xp run --out` would have
    /// written for this query, trailing newline included.
    pub payload: Option<String>,
    /// Human-readable failure description (busy/error responses).
    pub error: Option<String>,
    /// Server counters (stats responses).
    pub stats: Option<Json>,
    /// Always-on telemetry (JSON-format metrics responses).
    pub metrics: Option<Json>,
    /// Per-phase timing breakdown (query responses, only when the
    /// request asked for one). Purely observational: never part of the
    /// content digest, and the payload bytes are identical with or
    /// without it.
    pub timing: Option<Json>,
}

impl QueryResponse {
    fn bare(status: &str) -> Self {
        QueryResponse {
            status: status.to_string(),
            digest: None,
            source: None,
            payload: None,
            error: None,
            stats: None,
            metrics: None,
            timing: None,
        }
    }

    /// A successful query answer.
    pub fn ok(digest: impl Into<String>, source: Source, payload: impl Into<String>) -> Self {
        QueryResponse {
            digest: Some(digest.into()),
            source: Some(source),
            payload: Some(payload.into()),
            ..QueryResponse::bare("ok")
        }
    }

    /// Attaches a per-phase timing breakdown to the response.
    pub fn with_timing(mut self, timing: Json) -> Self {
        self.timing = Some(timing);
        self
    }

    /// A backpressure response: the request queue is full.
    pub fn busy(message: impl Into<String>) -> Self {
        QueryResponse {
            error: Some(message.into()),
            ..QueryResponse::bare("busy")
        }
    }

    /// A deadline-expiry response: the request's time budget ran out
    /// while it was still queued, so it was dropped, not computed.
    pub fn timeout(message: impl Into<String>) -> Self {
        QueryResponse {
            error: Some(message.into()),
            ..QueryResponse::bare("timeout")
        }
    }

    /// A failure response.
    pub fn error(message: impl Into<String>) -> Self {
        QueryResponse {
            error: Some(message.into()),
            ..QueryResponse::bare("error")
        }
    }

    /// A stats response carrying the server's counter object.
    pub fn stats(stats: Json) -> Self {
        QueryResponse {
            stats: Some(stats),
            ..QueryResponse::bare("ok")
        }
    }

    /// A JSON-format metrics response.
    pub fn metrics(metrics: Json) -> Self {
        QueryResponse {
            metrics: Some(metrics),
            ..QueryResponse::bare("ok")
        }
    }

    /// A text-format metrics response (Prometheus exposition): the text
    /// rides the wire as a JSON string under `metrics`.
    pub fn metrics_text(text: impl Into<String>) -> Self {
        QueryResponse {
            metrics: Some(Json::str(text.into())),
            ..QueryResponse::bare("ok")
        }
    }

    /// Whether the payload was served from the disk store.
    pub fn from_store(&self) -> bool {
        self.source == Some(Source::Store)
    }

    /// Serializes the response to its wire form.
    pub fn to_json(&self) -> Json {
        let mut o = Json::object();
        o.insert("status", self.status.as_str());
        if let Some(d) = &self.digest {
            o.insert("digest", d.as_str());
        }
        if let Some(s) = self.source {
            o.insert("source", s.as_str());
        }
        if let Some(p) = &self.payload {
            o.insert("payload", p.as_str());
        }
        if let Some(e) = &self.error {
            o.insert("error", e.as_str());
        }
        if let Some(s) = &self.stats {
            o.insert("stats", s.clone());
        }
        if let Some(m) = &self.metrics {
            o.insert("metrics", m.clone());
        }
        if let Some(t) = &self.timing {
            o.insert("timing", t.clone());
        }
        o
    }

    /// Parses a response from its wire form.
    pub fn from_json(j: &Json) -> Result<QueryResponse, String> {
        let status = j
            .get("status")
            .and_then(Json::as_str)
            .ok_or_else(|| "response missing `status`".to_string())?;
        if !matches!(status, "ok" | "busy" | "timeout" | "error") {
            return Err(format!("unknown response status {status:?}"));
        }
        let source = match j.get("source").and_then(Json::as_str) {
            None => None,
            Some("store") => Some(Source::Store),
            Some("computed") => Some(Source::Computed),
            Some(other) => return Err(format!("unknown response source {other:?}")),
        };
        Ok(QueryResponse {
            status: status.to_string(),
            digest: j
                .get("digest")
                .and_then(Json::as_str)
                .map(|s| s.to_string()),
            source,
            payload: j
                .get("payload")
                .and_then(Json::as_str)
                .map(|s| s.to_string()),
            error: j.get("error").and_then(Json::as_str).map(|s| s.to_string()),
            stats: j.get("stats").cloned(),
            metrics: j.get("metrics").cloned(),
            timing: j.get("timing").cloned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let req = QueryRequest::query("fig6")
            .with_set("bw", "4x")
            .with_set("gpms", "16");
        let line = req.to_json().render_jsonl_line();
        assert!(!line.trim_end_matches('\n').contains('\n'), "one line");
        let back = QueryRequest::from_json(&Json::parse(line.trim()).unwrap()).unwrap();
        assert_eq!(back, req);

        for req in [
            QueryRequest::stats(),
            QueryRequest::health(),
            QueryRequest::metrics(MetricsFormat::Json),
            QueryRequest::metrics(MetricsFormat::Prometheus),
            QueryRequest::shutdown(),
        ] {
            let back = QueryRequest::from_json(&req.to_json()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn timing_requests_round_trip_and_stay_off_the_plain_wire_form() {
        let plain = QueryRequest::query("fig6");
        assert!(
            !plain.to_json().render().contains("timing"),
            "timing must not appear unless asked for"
        );
        let req = QueryRequest::query("fig6").with_timing();
        let back = QueryRequest::from_json(&req.to_json()).unwrap();
        assert!(back.timing);
        assert_eq!(back, req);
        let bad =
            QueryRequest::from_json(&Json::parse(r#"{"artifact":"fig6","timing":"yes"}"#).unwrap())
                .unwrap_err();
        assert!(bad.contains("timing"), "{bad}");
    }

    #[test]
    fn metrics_format_rejects_garbage() {
        let bad =
            QueryRequest::from_json(&Json::parse(r#"{"op":"metrics","format":"xml"}"#).unwrap())
                .unwrap_err();
        assert!(bad.contains("metrics format"), "{bad}");
    }

    #[test]
    fn timing_responses_round_trip_without_touching_the_payload() {
        let payload = "{\n  \"id\": \"fig2\"\n}\n";
        let plain = QueryResponse::ok("d", Source::Computed, payload);
        let mut timing = Json::object();
        timing.insert("eval_ms", 1.5);
        let timed = QueryResponse::ok("d", Source::Computed, payload).with_timing(timing);
        assert_eq!(
            plain.payload, timed.payload,
            "timing never changes payload bytes"
        );
        let back =
            QueryResponse::from_json(&Json::parse(&timed.to_json().render()).unwrap()).unwrap();
        assert_eq!(back, timed);
        assert_eq!(
            back.timing.unwrap().get("eval_ms").unwrap().as_f64(),
            Some(1.5)
        );
        assert!(!plain.to_json().render().contains("timing"));
    }

    #[test]
    fn metrics_responses_round_trip() {
        let mut m = Json::object();
        m.insert("xpd.request", 12u64);
        let resp = QueryResponse::metrics(m);
        let back =
            QueryResponse::from_json(&Json::parse(&resp.to_json().render()).unwrap()).unwrap();
        assert_eq!(back, resp);
        assert_eq!(
            back.metrics.unwrap().get("xpd.request").unwrap().as_f64(),
            Some(12.0)
        );
    }

    #[test]
    fn deadlines_round_trip_and_reject_garbage() {
        let req = QueryRequest::query("fig6").with_deadline_ms(2500);
        let back = QueryRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(back.deadline_ms, Some(2500));
        assert_eq!(back, req);

        let bad = |text: &str| QueryRequest::from_json(&Json::parse(text).unwrap()).unwrap_err();
        for text in [
            r#"{"artifact":"fig6","deadline_ms":0}"#,
            r#"{"artifact":"fig6","deadline_ms":-5}"#,
            r#"{"artifact":"fig6","deadline_ms":1.5}"#,
            r#"{"artifact":"fig6","deadline_ms":"soon"}"#,
        ] {
            assert!(bad(text).contains("deadline_ms"), "{text}");
        }
    }

    #[test]
    fn timeout_responses_round_trip() {
        let resp = QueryResponse::timeout("deadline expired after 250 ms in queue");
        let back = QueryResponse::from_json(
            &Json::parse(resp.to_json().render_jsonl_line().trim()).unwrap(),
        )
        .unwrap();
        assert_eq!(back.status, "timeout");
        assert!(back.error.unwrap().contains("deadline"));
    }

    #[test]
    fn requests_reject_bad_forms() {
        let bad = |text: &str| QueryRequest::from_json(&Json::parse(text).unwrap()).unwrap_err();
        assert!(bad(r#"{"op":"frobnicate"}"#).contains("unknown op"));
        assert!(bad(r#"{"op":"query"}"#).contains("missing `artifact`"));
        assert!(bad(r#"{"artifact":""}"#).contains("empty"));
        assert!(bad(r#"{"artifact":"fig6","set":[1]}"#).contains("object"));
        assert!(bad(r#"{"artifact":"fig6","set":{"bw":7}}"#).contains("string"));
        assert!(bad(r#"{"artifact":"fig6","set":{"bw":"2x","bw":"4x"}}"#).contains("duplicate"));
    }

    #[test]
    fn responses_round_trip_with_multiline_payloads() {
        let payload = "{\n  \"id\": \"fig2\"\n}\n";
        let resp = QueryResponse::ok("0123456789abcdef", Source::Store, payload);
        let line = resp.to_json().render_jsonl_line();
        assert!(!line.trim_end_matches('\n').contains('\n'), "one line");
        let back = QueryResponse::from_json(&Json::parse(line.trim()).unwrap()).unwrap();
        assert_eq!(back, resp);
        assert!(back.from_store());
        assert_eq!(back.payload.as_deref(), Some(payload));

        let busy = QueryResponse::busy("queue full");
        let back = QueryResponse::from_json(&busy.to_json()).unwrap();
        assert_eq!(back.status, "busy");
        assert!(!back.from_store());
    }

    #[test]
    fn responses_reject_bad_forms() {
        let bad = |text: &str| QueryResponse::from_json(&Json::parse(text).unwrap()).unwrap_err();
        assert!(bad(r#"{"payload":"x"}"#).contains("missing `status`"));
        assert!(bad(r#"{"status":"teapot"}"#).contains("unknown response status"));
        assert!(bad(r#"{"status":"ok","source":"cloud"}"#).contains("unknown response source"));
    }
}
