//! Physical quantities used by the energy model and the simulator.
//!
//! All quantities are thin wrappers around `f64` (or `u64` for discrete
//! counts) with the dimensional arithmetic the paper's equations need:
//!
//! * `Power * Time = Energy` and `Energy / Time = Power` (Eq. 5),
//! * `EnergyPerBit * Bytes = Energy` (interconnect/DRAM costs, §V-A2),
//! * `Bytes / Bandwidth = Time` and `Cycles / Frequency = Time`
//!   (bandwidth accounting in the performance simulator).
//!
//! The types deliberately do not implement `Eq`/`Ord` (they carry `f64`s);
//! they provide `PartialOrd` plus an [`Energy::abs_diff`]-style helper where
//! tests need tolerant comparison.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An amount of energy, stored internally in joules.
///
/// # Examples
///
/// ```
/// use common::units::Energy;
/// let epi = Energy::from_nanojoules(0.05);
/// let total = epi * 1_000_000.0;
/// assert!((total.millijoules() - 0.05).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from joules.
    #[inline]
    pub fn from_joules(j: f64) -> Self {
        Energy(j)
    }

    /// Creates an energy from millijoules.
    #[inline]
    pub fn from_millijoules(mj: f64) -> Self {
        Energy(mj * 1e-3)
    }

    /// Creates an energy from microjoules.
    #[inline]
    pub fn from_microjoules(uj: f64) -> Self {
        Energy(uj * 1e-6)
    }

    /// Creates an energy from nanojoules (the unit of the paper's EPI/EPT
    /// table, Table Ib).
    #[inline]
    pub fn from_nanojoules(nj: f64) -> Self {
        Energy(nj * 1e-9)
    }

    /// Creates an energy from picojoules (the unit of per-bit link costs).
    #[inline]
    pub fn from_picojoules(pj: f64) -> Self {
        Energy(pj * 1e-12)
    }

    /// Returns the energy in joules.
    #[inline]
    pub fn joules(self) -> f64 {
        self.0
    }

    /// Returns the energy in millijoules.
    #[inline]
    pub fn millijoules(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the energy in nanojoules.
    #[inline]
    pub fn nanojoules(self) -> f64 {
        self.0 * 1e9
    }

    /// Returns the energy in picojoules.
    #[inline]
    pub fn picojoules(self) -> f64 {
        self.0 * 1e12
    }

    /// Absolute difference, useful for tolerant test comparisons.
    #[inline]
    pub fn abs_diff(self, other: Energy) -> Energy {
        Energy((self.0 - other.0).abs())
    }

    /// `true` if the value is finite (not NaN/inf).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Clamps a (possibly slightly negative, from sensor noise) energy at zero.
    #[inline]
    pub fn max_zero(self) -> Energy {
        Energy(self.0.max(0.0))
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let j = self.0.abs();
        if j >= 1.0 {
            write!(f, "{:.3} J", self.0)
        } else if j >= 1e-3 {
            write!(f, "{:.3} mJ", self.0 * 1e3)
        } else if j >= 1e-6 {
            write!(f, "{:.3} uJ", self.0 * 1e6)
        } else if j >= 1e-9 {
            write!(f, "{:.3} nJ", self.0 * 1e9)
        } else {
            write!(f, "{:.3} pJ", self.0 * 1e12)
        }
    }
}

/// Electrical power, stored internally in watts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Power(f64);

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0.0);

    /// Creates a power from watts.
    #[inline]
    pub fn from_watts(w: f64) -> Self {
        Power(w)
    }

    /// Creates a power from milliwatts (NVML reports milliwatts).
    #[inline]
    pub fn from_milliwatts(mw: f64) -> Self {
        Power(mw * 1e-3)
    }

    /// Returns the power in watts.
    #[inline]
    pub fn watts(self) -> f64 {
        self.0
    }

    /// Returns the power in milliwatts.
    #[inline]
    pub fn milliwatts(self) -> f64 {
        self.0 * 1e3
    }

    /// Absolute difference between two powers.
    #[inline]
    pub fn abs_diff(self, other: Power) -> Power {
        Power((self.0 - other.0).abs())
    }

    /// Clamps negative power readings at zero.
    #[inline]
    pub fn max_zero(self) -> Power {
        Power(self.0.max(0.0))
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} W", self.0)
    }
}

/// A duration, stored internally in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Time(f64);

impl Time {
    /// Zero duration.
    pub const ZERO: Time = Time(0.0);

    /// Creates a time from seconds.
    #[inline]
    pub fn from_secs(s: f64) -> Self {
        Time(s)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        Time(ms * 1e-3)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> Self {
        Time(us * 1e-6)
    }

    /// Creates a time from nanoseconds.
    #[inline]
    pub fn from_nanos(ns: f64) -> Self {
        Time(ns * 1e-9)
    }

    /// Returns the time in seconds.
    #[inline]
    pub fn secs(self) -> f64 {
        self.0
    }

    /// Returns the time in milliseconds.
    #[inline]
    pub fn millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the time in microseconds.
    #[inline]
    pub fn micros(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the time in nanoseconds.
    #[inline]
    pub fn nanos(self) -> f64 {
        self.0 * 1e9
    }

    /// Absolute difference between two times.
    #[inline]
    pub fn abs_diff(self, other: Time) -> Time {
        Time((self.0 - other.0).abs())
    }

    /// `true` if this duration is strictly positive.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 > 0.0
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0.abs();
        if s >= 1.0 {
            write!(f, "{:.3} s", self.0)
        } else if s >= 1e-3 {
            write!(f, "{:.3} ms", self.0 * 1e3)
        } else if s >= 1e-6 {
            write!(f, "{:.3} us", self.0 * 1e6)
        } else {
            write!(f, "{:.1} ns", self.0 * 1e9)
        }
    }
}

/// A count of clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    #[inline]
    pub fn new(c: u64) -> Self {
        Cycles(c)
    }

    /// Returns the raw count.
    #[inline]
    pub fn count(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(other.0))
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

/// A clock frequency, stored internally in hertz.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Frequency(f64);

impl Frequency {
    /// Creates a frequency from hertz.
    #[inline]
    pub fn from_hz(hz: f64) -> Self {
        Frequency(hz)
    }

    /// Creates a frequency from megahertz.
    #[inline]
    pub fn from_mhz(mhz: f64) -> Self {
        Frequency(mhz * 1e6)
    }

    /// Creates a frequency from gigahertz.
    #[inline]
    pub fn from_ghz(ghz: f64) -> Self {
        Frequency(ghz * 1e9)
    }

    /// Returns the frequency in hertz.
    #[inline]
    pub fn hz(self) -> f64 {
        self.0
    }

    /// Returns the frequency in gigahertz.
    #[inline]
    pub fn ghz(self) -> f64 {
        self.0 * 1e-9
    }

    /// Duration of a single clock period.
    #[inline]
    pub fn period(self) -> Time {
        Time(1.0 / self.0)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} GHz", self.ghz())
    }
}

/// A byte count (data volume).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(pub u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a byte count.
    #[inline]
    pub fn new(b: u64) -> Self {
        Bytes(b)
    }

    /// Creates a byte count from kibibytes.
    #[inline]
    pub fn from_kib(k: u64) -> Self {
        Bytes(k * 1024)
    }

    /// Creates a byte count from mebibytes.
    #[inline]
    pub fn from_mib(m: u64) -> Self {
        Bytes(m * 1024 * 1024)
    }

    /// Creates a byte count from gibibytes.
    #[inline]
    pub fn from_gib(g: u64) -> Self {
        Bytes(g * 1024 * 1024 * 1024)
    }

    /// Returns the raw byte count.
    #[inline]
    pub fn count(self) -> u64 {
        self.0
    }

    /// Number of bits.
    #[inline]
    pub fn bits(self) -> u64 {
        self.0 * 8
    }

    /// Returns the count in kibibytes as a float.
    #[inline]
    pub fn kib(self) -> f64 {
        self.0 as f64 / 1024.0
    }

    /// Returns the count in mebibytes as a float.
    #[inline]
    pub fn mib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(other.0))
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if b >= 1024.0 * 1024.0 * 1024.0 {
            write!(f, "{:.2} GiB", b / (1024.0 * 1024.0 * 1024.0))
        } else if b >= 1024.0 * 1024.0 {
            write!(f, "{:.2} MiB", b / (1024.0 * 1024.0))
        } else if b >= 1024.0 {
            write!(f, "{:.2} KiB", b / 1024.0)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

impl Add for Bytes {
    type Output = Bytes;
    #[inline]
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    #[inline]
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        Bytes(iter.map(|b| b.0).sum())
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    #[inline]
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}

/// A data-transfer rate, stored internally in bytes per second.
///
/// The paper quotes bandwidths in decimal GB/s (e.g., 256 GB/s per HBM
/// stack); [`Bandwidth::from_gb_per_sec`] uses the decimal convention.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Zero bandwidth.
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// Creates a bandwidth from bytes per second.
    #[inline]
    pub fn from_bytes_per_sec(bps: f64) -> Self {
        Bandwidth(bps)
    }

    /// Creates a bandwidth from decimal gigabytes per second.
    #[inline]
    pub fn from_gb_per_sec(gbps: f64) -> Self {
        Bandwidth(gbps * 1e9)
    }

    /// Returns bytes per second.
    #[inline]
    pub fn bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Returns decimal gigabytes per second.
    #[inline]
    pub fn gb_per_sec(self) -> f64 {
        self.0 * 1e-9
    }

    /// Bytes transferable per clock cycle at the given core frequency.
    ///
    /// The simulator turns link bandwidths into per-cycle byte budgets with
    /// this; the result is fractional and accumulated as a token bucket.
    #[inline]
    pub fn bytes_per_cycle(self, clock: Frequency) -> f64 {
        self.0 / clock.hz()
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} GB/s", self.gb_per_sec())
    }
}

impl Mul<f64> for Bandwidth {
    type Output = Bandwidth;
    #[inline]
    fn mul(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 * rhs)
    }
}

impl Div<f64> for Bandwidth {
    type Output = Bandwidth;
    #[inline]
    fn div(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 / rhs)
    }
}

/// An energy cost per transferred bit, stored internally in joules per bit.
///
/// The paper's link/DRAM costs are quoted in pJ/bit: 0.54 pJ/bit on-package,
/// 10 pJ/bit on-board, 21.1 pJ/bit HBM DRAM-to-L2 (§V-A2).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct EnergyPerBit(f64);

impl EnergyPerBit {
    /// Zero cost.
    pub const ZERO: EnergyPerBit = EnergyPerBit(0.0);

    /// Creates a per-bit energy from picojoules per bit.
    #[inline]
    pub fn from_pj_per_bit(pj: f64) -> Self {
        EnergyPerBit(pj * 1e-12)
    }

    /// Returns picojoules per bit.
    #[inline]
    pub fn pj_per_bit(self) -> f64 {
        self.0 * 1e12
    }

    /// Energy to move `bytes` at this per-bit cost.
    #[inline]
    pub fn energy_for(self, bytes: Bytes) -> Energy {
        Energy(self.0 * bytes.bits() as f64)
    }
}

impl fmt::Display for EnergyPerBit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} pJ/bit", self.pj_per_bit())
    }
}

impl Mul<f64> for EnergyPerBit {
    type Output = EnergyPerBit;
    #[inline]
    fn mul(self, rhs: f64) -> EnergyPerBit {
        EnergyPerBit(self.0 * rhs)
    }
}

// ---- dimensional arithmetic -------------------------------------------------

macro_rules! impl_linear_ops {
    ($ty:ident) => {
        impl Add for $ty {
            type Output = $ty;
            #[inline]
            fn add(self, rhs: $ty) -> $ty {
                $ty(self.0 + rhs.0)
            }
        }
        impl AddAssign for $ty {
            #[inline]
            fn add_assign(&mut self, rhs: $ty) {
                self.0 += rhs.0;
            }
        }
        impl Sub for $ty {
            type Output = $ty;
            #[inline]
            fn sub(self, rhs: $ty) -> $ty {
                $ty(self.0 - rhs.0)
            }
        }
        impl SubAssign for $ty {
            #[inline]
            fn sub_assign(&mut self, rhs: $ty) {
                self.0 -= rhs.0;
            }
        }
        impl Neg for $ty {
            type Output = $ty;
            #[inline]
            fn neg(self) -> $ty {
                $ty(-self.0)
            }
        }
        impl Mul<f64> for $ty {
            type Output = $ty;
            #[inline]
            fn mul(self, rhs: f64) -> $ty {
                $ty(self.0 * rhs)
            }
        }
        impl Mul<$ty> for f64 {
            type Output = $ty;
            #[inline]
            fn mul(self, rhs: $ty) -> $ty {
                $ty(self * rhs.0)
            }
        }
        impl Div<f64> for $ty {
            type Output = $ty;
            #[inline]
            fn div(self, rhs: f64) -> $ty {
                $ty(self.0 / rhs)
            }
        }
        impl Div<$ty> for $ty {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $ty) -> f64 {
                self.0 / rhs.0
            }
        }
        impl Sum for $ty {
            fn sum<I: Iterator<Item = $ty>>(iter: I) -> $ty {
                $ty(iter.map(|v| v.0).sum())
            }
        }
    };
}

impl_linear_ops!(Energy);
impl_linear_ops!(Power);
impl_linear_ops!(Time);

impl Mul<Time> for Power {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: Time) -> Energy {
        Energy(self.0 * rhs.0)
    }
}

impl Mul<Power> for Time {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: Power) -> Energy {
        Energy(self.0 * rhs.0)
    }
}

impl Div<Time> for Energy {
    type Output = Power;
    #[inline]
    fn div(self, rhs: Time) -> Power {
        Power(self.0 / rhs.0)
    }
}

impl Div<Power> for Energy {
    type Output = Time;
    #[inline]
    fn div(self, rhs: Power) -> Time {
        Time(self.0 / rhs.0)
    }
}

impl Div<Frequency> for Cycles {
    type Output = Time;
    #[inline]
    fn div(self, rhs: Frequency) -> Time {
        Time(self.0 as f64 / rhs.hz())
    }
}

impl Div<Bandwidth> for Bytes {
    type Output = Time;
    #[inline]
    fn div(self, rhs: Bandwidth) -> Time {
        Time(self.0 as f64 / rhs.bytes_per_sec())
    }
}

impl Mul<Bytes> for EnergyPerBit {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: Bytes) -> Energy {
        self.energy_for(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_unit_conversions_round_trip() {
        let e = Energy::from_nanojoules(5.45);
        assert!((e.picojoules() - 5450.0).abs() < 1e-9);
        assert!((e.joules() - 5.45e-9).abs() < 1e-20);
        let e2 = Energy::from_picojoules(e.picojoules());
        assert!(e.abs_diff(e2).joules() < 1e-18);
    }

    #[test]
    fn power_times_time_is_energy() {
        let p = Power::from_watts(235.0);
        let t = Time::from_millis(15.0);
        let e = p * t;
        assert!((e.joules() - 3.525).abs() < 1e-12);
        assert!((e / t).abs_diff(p).watts() < 1e-12);
        assert!((e / p).abs_diff(t).secs() < 1e-12);
    }

    #[test]
    fn cycles_over_frequency_is_time() {
        let c = Cycles::new(1_000_000_000);
        let f = Frequency::from_ghz(1.0);
        let t = c / f;
        assert!((t.secs() - 1.0).abs() < 1e-12);
        assert!((f.period().nanos() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bytes_over_bandwidth_is_time() {
        let b = Bytes::from_gib(1);
        let bw = Bandwidth::from_gb_per_sec(256.0);
        let t = b / bw;
        // 1 GiB over 256 decimal GB/s: ~4.19 ms.
        assert!((t.millis() - 4.194).abs() < 0.01);
    }

    #[test]
    fn energy_per_bit_times_bytes_is_energy() {
        // Paper: moving one 128 B transaction over a 10 pJ/bit on-board link.
        let link = EnergyPerBit::from_pj_per_bit(10.0);
        let e = link * Bytes::new(128);
        assert!((e.nanojoules() - 10.24).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_bytes_per_cycle() {
        let bw = Bandwidth::from_gb_per_sec(256.0);
        let clk = Frequency::from_ghz(1.0);
        assert!((bw.bytes_per_cycle(clk) - 256.0).abs() < 1e-9);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", Energy::from_joules(1.5)), "1.500 J");
        assert_eq!(format!("{}", Energy::from_nanojoules(5.0)), "5.000 nJ");
        assert_eq!(format!("{}", Time::from_micros(250.0)), "250.000 us");
        assert_eq!(format!("{}", Bytes::from_mib(2)), "2.00 MiB");
        assert_eq!(
            format!("{}", Bandwidth::from_gb_per_sec(128.0)),
            "128.0 GB/s"
        );
        assert_eq!(
            format!("{}", EnergyPerBit::from_pj_per_bit(0.54)),
            "0.54 pJ/bit"
        );
    }

    #[test]
    fn sums_and_scaling() {
        let total: Energy = (0..10).map(|_| Energy::from_joules(0.1)).sum();
        assert!((total.joules() - 1.0).abs() < 1e-12);
        let half = total / 2.0;
        assert!((half.joules() - 0.5).abs() < 1e-12);
        assert!((total / half - 2.0).abs() < 1e-12);
    }

    #[test]
    fn max_zero_clamps() {
        assert_eq!(Energy::from_joules(-0.5).max_zero(), Energy::ZERO);
        assert_eq!(Power::from_watts(-1.0).max_zero(), Power::ZERO);
        assert_eq!(
            Energy::from_joules(2.0).max_zero(),
            Energy::from_joules(2.0)
        );
    }

    #[test]
    fn bytes_arithmetic() {
        let mut b = Bytes::from_kib(32);
        b += Bytes::new(768);
        assert_eq!(b.count(), 32 * 1024 + 768);
        assert_eq!(Bytes::new(100).saturating_sub(Bytes::new(200)), Bytes::ZERO);
        assert_eq!(Bytes::new(4).bits(), 32);
        assert_eq!(Bytes::new(64) * 2, Bytes::new(128));
    }
}
