//! Property tests for the unit types: dimensional arithmetic must behave
//! like real algebra over the full numeric range the simulator uses.

use common::units::{Bandwidth, Bytes, Energy, EnergyPerBit, Power, Time};
use proptest::prelude::*;

/// Values that occur in practice: picojoules up to kilojoules, and so on.
fn magnitude() -> impl Strategy<Value = f64> {
    (1e-12_f64..1e4).prop_map(|v| v)
}

proptest! {
    #[test]
    fn energy_addition_is_commutative(a in magnitude(), b in magnitude()) {
        let x = Energy::from_joules(a) + Energy::from_joules(b);
        let y = Energy::from_joules(b) + Energy::from_joules(a);
        prop_assert!((x.joules() - y.joules()).abs() <= 1e-12 * (a + b));
    }

    #[test]
    fn power_time_energy_round_trip(p in magnitude(), t in magnitude()) {
        let e = Power::from_watts(p) * Time::from_secs(t);
        let back = e / Time::from_secs(t);
        prop_assert!((back.watts() - p).abs() <= 1e-9 * p);
        let back_t = e / Power::from_watts(p);
        prop_assert!((back_t.secs() - t).abs() <= 1e-9 * t);
    }

    #[test]
    fn unit_conversions_round_trip(j in magnitude()) {
        let e = Energy::from_joules(j);
        prop_assert!((Energy::from_nanojoules(e.nanojoules()).joules() - j).abs() <= 1e-9 * j);
        prop_assert!((Energy::from_picojoules(e.picojoules()).joules() - j).abs() <= 1e-9 * j);
        let t = Time::from_secs(j);
        prop_assert!((Time::from_nanos(t.nanos()).secs() - j).abs() <= 1e-9 * j);
    }

    #[test]
    fn energy_per_bit_is_linear_in_bytes(pj in 0.01_f64..100.0, n in 0_u64..1 << 40) {
        let cost = EnergyPerBit::from_pj_per_bit(pj);
        let one = cost.energy_for(Bytes::new(1)).joules();
        let many = cost.energy_for(Bytes::new(n)).joules();
        prop_assert!((many - one * n as f64).abs() <= 1e-9 * many.max(1e-30));
    }

    #[test]
    fn bytes_over_bandwidth_scales_inversely(
        bytes in 1_u64..1 << 40,
        gbps in 1.0_f64..10_000.0,
    ) {
        let t1 = Bytes::new(bytes) / Bandwidth::from_gb_per_sec(gbps);
        let t2 = Bytes::new(bytes) / Bandwidth::from_gb_per_sec(2.0 * gbps);
        prop_assert!((t1.secs() - 2.0 * t2.secs()).abs() <= 1e-9 * t1.secs());
    }

    #[test]
    fn scalar_multiplication_distributes(e in magnitude(), k in 0.0_f64..1e4) {
        let a = Energy::from_joules(e) * k + Energy::from_joules(e) * k;
        let b = Energy::from_joules(e) * (2.0 * k);
        prop_assert!((a.joules() - b.joules()).abs() <= 1e-9 * b.joules().max(1e-30));
    }

    #[test]
    fn max_zero_is_idempotent_and_non_negative(v in -1e6_f64..1e6) {
        let e = Energy::from_joules(v).max_zero();
        prop_assert!(e.joules() >= 0.0);
        prop_assert_eq!(e.max_zero(), e);
    }

    #[test]
    fn sum_equals_fold(values in prop::collection::vec(magnitude(), 0..50)) {
        let sum: Energy = values.iter().map(|&v| Energy::from_joules(v)).sum();
        let fold = values
            .iter()
            .fold(Energy::ZERO, |acc, &v| acc + Energy::from_joules(v));
        prop_assert!((sum.joules() - fold.joules()).abs() <= 1e-9 * sum.joules().max(1e-30));
    }
}

// ---------------------------------------------------------------------------
// common::json round-trip properties
// ---------------------------------------------------------------------------

mod json_props {
    use common::json::Json;
    use proptest::prelude::*;

    /// Unicode scalar values, skipping the surrogate gap.
    fn any_char() -> impl Strategy<Value = char> {
        (0u32..0x11_0000).prop_map(|v| {
            let v = if (0xD800..0xE000).contains(&v) {
                0x20
            } else {
                v
            };
            char::from_u32(v).unwrap_or('\u{fffd}')
        })
    }

    fn any_string() -> impl Strategy<Value = String> {
        prop::collection::vec(any_char(), 0..24).prop_map(|cs| cs.into_iter().collect())
    }

    proptest! {
        #[test]
        fn strings_round_trip(s in any_string()) {
            let rendered = Json::str(s.clone()).render();
            let back = Json::parse(&rendered).unwrap();
            prop_assert_eq!(back, Json::str(s));
        }

        #[test]
        fn numbers_round_trip_bit_exact(v in -1e18_f64..1e18) {
            let rendered = Json::Number(v).render();
            let back = Json::parse(&rendered).unwrap().as_f64().unwrap();
            prop_assert_eq!(back.to_bits(), v.to_bits());
        }

        #[test]
        fn artifact_shaped_documents_round_trip(
            ids in prop::collection::vec("[a-z0-9_]{1,12}", 1..6),
            values in prop::collection::vec(-1e9_f64..1e9, 1..6),
            pretty in 0u32..2,
        ) {
            let mut doc = Json::object();
            doc.insert("schema_version", 1u64);
            let mut rows = Json::array();
            for (id, v) in ids.iter().zip(values.iter().cycle()) {
                let mut row = Json::object();
                row.insert("id", id.as_str());
                row.insert("value", *v);
                rows.push(row);
            }
            doc.insert("rows", rows);
            let text = if pretty == 1 { doc.render_pretty() } else { doc.render() };
            let back = Json::parse(&text).unwrap();
            prop_assert_eq!(back, doc);
        }
    }
}
