//! Property tests for the event-count records: the energy model's inputs
//! must compose linearly.

use common::units::{Bytes, Time};
use isa::{EventCounts, Opcode, OpcodeCounts, Transaction, TxnCounts};
use proptest::prelude::*;

fn opcode() -> impl Strategy<Value = Opcode> {
    (0..Opcode::COUNT).prop_map(|i| Opcode::from_index(i).unwrap())
}

fn txn() -> impl Strategy<Value = Transaction> {
    (0..Transaction::COUNT).prop_map(|i| Transaction::from_index(i).unwrap())
}

fn opcode_counts() -> impl Strategy<Value = OpcodeCounts> {
    prop::collection::vec((opcode(), 0_u64..1 << 30), 0..20).prop_map(|v| v.into_iter().collect())
}

fn event_counts() -> impl Strategy<Value = EventCounts> {
    (
        opcode_counts(),
        prop::collection::vec((txn(), 0_u64..1 << 30), 0..12),
        0_u64..1 << 34,
        0_u64..1 << 34,
        0_u64..1 << 30,
        (1_u64..1 << 30, 0_u64..1 << 30),
    )
        .prop_map(|(instrs, txns, e2e, hops, stalls, (busy, idle))| {
            let mut ev = EventCounts::new();
            ev.instrs = instrs;
            ev.txns = txns.into_iter().collect::<TxnCounts>();
            ev.inter_gpm_bytes = Bytes::new(e2e);
            ev.inter_gpm_hop_bytes = Bytes::new(hops);
            ev.stall_cycles = stalls;
            ev.busy_sm_cycles = busy;
            ev.idle_sm_cycles = idle;
            ev.elapsed = Time::from_nanos(busy as f64);
            ev
        })
}

proptest! {
    #[test]
    fn merge_is_associative(a in event_counts(), b in event_counts(), c in event_counts()) {
        let mut left = a.clone();
        left.merge_sequential(&b);
        left.merge_sequential(&c);

        let mut bc = b.clone();
        bc.merge_sequential(&c);
        let mut right = a.clone();
        right.merge_sequential(&bc);

        prop_assert_eq!(left.instrs, right.instrs);
        prop_assert_eq!(left.txns, right.txns);
        prop_assert_eq!(left.stall_cycles, right.stall_cycles);
        prop_assert!((left.elapsed.secs() - right.elapsed.secs()).abs()
            <= 1e-9 * left.elapsed.secs().max(1e-30));
    }

    #[test]
    fn scale_matches_repeated_merge(ev in event_counts(), k in 1_u64..6) {
        let mut scaled = ev.clone();
        scaled.scale(k);

        let mut merged = EventCounts::new();
        for _ in 0..k {
            merged.merge_sequential(&ev);
        }
        prop_assert_eq!(scaled.instrs, merged.instrs);
        prop_assert_eq!(scaled.txns, merged.txns);
        prop_assert_eq!(scaled.inter_gpm_bytes, merged.inter_gpm_bytes);
        prop_assert_eq!(scaled.inter_gpm_hop_bytes, merged.inter_gpm_hop_bytes);
        prop_assert_eq!(scaled.stall_cycles, merged.stall_cycles);
        prop_assert!((scaled.elapsed.secs() - merged.elapsed.secs()).abs()
            <= 1e-9 * scaled.elapsed.secs().max(1e-30));
    }

    #[test]
    fn totals_equal_sum_of_parts(counts in opcode_counts()) {
        let by_iter: u64 = counts.iter().map(|(_, n)| n).sum();
        prop_assert_eq!(counts.total(), by_iter);
    }

    #[test]
    fn idle_fraction_is_a_fraction(ev in event_counts()) {
        let f = ev.idle_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn opcode_index_bijection(op in opcode()) {
        prop_assert_eq!(Opcode::from_index(op.index()), Some(op));
    }
}
