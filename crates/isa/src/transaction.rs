//! Data-movement transaction classes.
//!
//! GPUJoule charges energy per *transaction* between adjacent levels of the
//! memory hierarchy (Table Ib bottom half), and — in the multi-GPM designs
//! of §V — per bit moved over inter-module links and switch chips.

use std::fmt;

/// A class of data-movement transaction the energy model charges for.
///
/// The first four variants are the intra-GPM hierarchy levels measured on
/// the Tesla K40; the last two are the multi-module extensions whose cost
/// is configured per integration domain (pJ/bit × bytes, §V-A2).
///
/// # Examples
///
/// ```
/// use isa::Transaction;
/// assert!(Transaction::DramToL2.is_intra_gpm());
/// assert!(!Transaction::InterGpmHop.is_intra_gpm());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Transaction {
    /// Shared memory to register file.
    SharedToReg,
    /// L1 data cache to register file.
    L1ToReg,
    /// L2 cache to L1 cache (an L1 miss serviced by the L2).
    L2ToL1,
    /// DRAM to L2 cache (an L2 miss serviced by local DRAM).
    DramToL2,
    /// One hop over an inter-GPM link (ring or point-to-point); multi-hop
    /// transfers are counted once per traversed link.
    InterGpmHop,
    /// A traversal through an on-board high-radix switch chip (charged in
    /// addition to the link hops into and out of the switch, §V-C).
    SwitchTraversal,
}

impl Transaction {
    /// Number of transaction classes.
    pub const COUNT: usize = 6;

    /// All transaction classes in `repr` order.
    pub const ALL: [Transaction; Transaction::COUNT] = [
        Transaction::SharedToReg,
        Transaction::L1ToReg,
        Transaction::L2ToL1,
        Transaction::DramToL2,
        Transaction::InterGpmHop,
        Transaction::SwitchTraversal,
    ];

    /// Dense index for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Transaction class for a dense index, if in range.
    #[inline]
    pub fn from_index(idx: usize) -> Option<Transaction> {
        Transaction::ALL.get(idx).copied()
    }

    /// `true` for transactions inside a single GPM (the classes the K40
    /// microbenchmarks can measure directly).
    #[inline]
    pub fn is_intra_gpm(self) -> bool {
        !matches!(
            self,
            Transaction::InterGpmHop | Transaction::SwitchTraversal
        )
    }

    /// Bytes moved by one transaction of this class.
    ///
    /// The K40's L1-level transactions move full 128-byte cachelines; the
    /// L2 and DRAM interfaces are sectored at 32 bytes (this is what makes
    /// Table Ib's nJ and pJ/bit columns consistent). Inter-GPM transfers
    /// are likewise counted in 32-byte sectors.
    pub fn bytes_per_txn(self) -> u64 {
        match self {
            Transaction::SharedToReg | Transaction::L1ToReg => 128,
            Transaction::L2ToL1
            | Transaction::DramToL2
            | Transaction::InterGpmHop
            | Transaction::SwitchTraversal => 32,
        }
    }

    /// Human-readable label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Transaction::SharedToReg => "Shared -> Reg",
            Transaction::L1ToReg => "L1 -> Reg",
            Transaction::L2ToL1 => "L2 -> L1",
            Transaction::DramToL2 => "DRAM -> L2",
            Transaction::InterGpmHop => "Inter-GPM hop",
            Transaction::SwitchTraversal => "Switch traversal",
        }
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for (i, t) in Transaction::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
            assert_eq!(Transaction::from_index(i), Some(*t));
        }
        assert_eq!(Transaction::from_index(Transaction::COUNT), None);
    }

    #[test]
    fn intra_gpm_partition() {
        let intra = Transaction::ALL.iter().filter(|t| t.is_intra_gpm()).count();
        assert_eq!(intra, 4);
    }

    #[test]
    fn txn_sizes_match_table_1b_sectoring() {
        assert_eq!(Transaction::L1ToReg.bytes_per_txn(), 128);
        assert_eq!(Transaction::SharedToReg.bytes_per_txn(), 128);
        assert_eq!(Transaction::L2ToL1.bytes_per_txn(), 32);
        assert_eq!(Transaction::DramToL2.bytes_per_txn(), 32);
        assert_eq!(Transaction::InterGpmHop.bytes_per_txn(), 32);
    }

    #[test]
    fn labels_unique() {
        let set: std::collections::HashSet<&str> =
            Transaction::ALL.iter().map(|t| t.label()).collect();
        assert_eq!(set.len(), Transaction::COUNT);
    }
}
