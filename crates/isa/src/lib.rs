#![deny(missing_docs)]

//! PTX-level instruction abstraction for the GPUJoule study.
//!
//! GPUJoule (paper §IV) is *top-down*: it reasons about native PTX
//! instructions and macro-level data movement, never about pipeline
//! structures. This crate defines exactly that vocabulary:
//!
//! * [`Opcode`] — the PTX compute instructions of Table Ib (plus a few
//!   cheap control/move instructions real kernels need),
//! * [`Transaction`] — data-movement classes between levels of the memory
//!   hierarchy (shared→RF, L1→RF, L2→L1, DRAM→L2, plus the multi-GPM link
//!   and switch traversals of §V),
//! * [`WarpInstr`]/[`KernelProgram`] — procedurally generated warp
//!   instruction streams that the performance simulator executes,
//! * [`EventCounts`] — the per-run event totals handed to the energy model
//!   (the `IC`/`TC`/`stalls`/`Execution_Time` terms of Eq. 4).

pub mod counts;
pub mod opcode;
pub mod program;
pub mod transaction;

pub use counts::{EventCounts, OpcodeCounts, TxnCounts};
pub use opcode::{OpClass, Opcode};
pub use program::{
    disassemble, GridShape, KernelProgram, LaunchSpec, MemRef, MemSpace, PredecodedStream,
    WarpInstr, WarpInstrStream, PREDECODE_WINDOW,
};
pub use transaction::Transaction;

/// Threads per warp on all simulated architectures (NVIDIA's fixed 32).
pub const WARP_SIZE: u32 = 32;

/// Bytes per memory transaction (one coalesced 128-byte cacheline, the
/// granularity the paper's pointer-chase microbenchmarks are built around).
pub const TRANSACTION_BYTES: u64 = 128;
