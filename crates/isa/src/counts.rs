//! Event-count records: the interface between performance simulation and
//! the energy model.
//!
//! A simulation run produces an [`EventCounts`]: how many instructions of
//! each opcode executed, how many transactions moved between each pair of
//! hierarchy levels, how many bytes crossed inter-GPM links (per hop), how
//! many lane-stall cycles SMs accumulated, and how long the run took. These
//! are exactly the `IC`, `TC`, `stalls`, and `Execution_Time` terms of the
//! paper's Eq. 4.

use crate::{Opcode, Transaction};
use common::units::{Bytes, Time};
use std::fmt;
use std::ops::AddAssign;

/// Per-opcode instruction counts, stored densely.
///
/// # Examples
///
/// ```
/// use isa::{Opcode, OpcodeCounts};
/// let mut c = OpcodeCounts::new();
/// c.add(Opcode::FFma32, 1000);
/// c.add(Opcode::FFma32, 24);
/// assert_eq!(c.get(Opcode::FFma32), 1024);
/// assert_eq!(c.total(), 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpcodeCounts {
    counts: [u64; Opcode::COUNT],
}

impl OpcodeCounts {
    /// An empty count table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` executions of `op`.
    #[inline]
    pub fn add(&mut self, op: Opcode, n: u64) {
        self.counts[op.index()] += n;
    }

    /// Count for one opcode.
    #[inline]
    pub fn get(&self, op: Opcode) -> u64 {
        self.counts[op.index()]
    }

    /// Total dynamic instruction count.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterates over `(opcode, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (Opcode, u64)> + '_ {
        Opcode::ALL
            .iter()
            .map(move |&op| (op, self.get(op)))
            .filter(|&(_, n)| n > 0)
    }

    /// Merges another table into this one.
    pub fn merge(&mut self, other: &OpcodeCounts) {
        for i in 0..Opcode::COUNT {
            self.counts[i] += other.counts[i];
        }
    }

    /// Multiplies every count by `k`.
    pub fn scale(&mut self, k: u64) {
        for c in &mut self.counts {
            *c *= k;
        }
    }

    /// `true` if every count is zero.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }
}

impl FromIterator<(Opcode, u64)> for OpcodeCounts {
    fn from_iter<I: IntoIterator<Item = (Opcode, u64)>>(iter: I) -> Self {
        let mut c = OpcodeCounts::new();
        for (op, n) in iter {
            c.add(op, n);
        }
        c
    }
}

impl AddAssign<&OpcodeCounts> for OpcodeCounts {
    fn add_assign(&mut self, rhs: &OpcodeCounts) {
        self.merge(rhs);
    }
}

/// Per-class transaction counts, stored densely.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TxnCounts {
    counts: [u64; Transaction::COUNT],
}

impl TxnCounts {
    /// An empty count table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` transactions of class `t`.
    #[inline]
    pub fn add(&mut self, t: Transaction, n: u64) {
        self.counts[t.index()] += n;
    }

    /// Count for one transaction class.
    #[inline]
    pub fn get(&self, t: Transaction) -> u64 {
        self.counts[t.index()]
    }

    /// Total transaction count across classes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterates over `(class, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (Transaction, u64)> + '_ {
        Transaction::ALL
            .iter()
            .map(move |&t| (t, self.get(t)))
            .filter(|&(_, n)| n > 0)
    }

    /// Merges another table into this one.
    pub fn merge(&mut self, other: &TxnCounts) {
        for i in 0..Transaction::COUNT {
            self.counts[i] += other.counts[i];
        }
    }

    /// Multiplies every count by `k`.
    pub fn scale(&mut self, k: u64) {
        for c in &mut self.counts {
            *c *= k;
        }
    }

    /// `true` if every count is zero.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }
}

impl FromIterator<(Transaction, u64)> for TxnCounts {
    fn from_iter<I: IntoIterator<Item = (Transaction, u64)>>(iter: I) -> Self {
        let mut c = TxnCounts::new();
        for (t, n) in iter {
            c.add(t, n);
        }
        c
    }
}

impl AddAssign<&TxnCounts> for TxnCounts {
    fn add_assign(&mut self, rhs: &TxnCounts) {
        self.merge(rhs);
    }
}

/// Everything the energy model needs to know about one run.
///
/// Produced by the performance simulator (`sim` crate) or the virtual
/// silicon backend (`silicon` crate); consumed by `gpujoule::EnergyModel`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EventCounts {
    /// Dynamic compute-instruction counts per opcode (warp-level; one count
    /// is one warp instruction, matching how EPIs are derived).
    pub instrs: OpcodeCounts,
    /// Data-movement transaction counts per class.
    pub txns: TxnCounts,
    /// Total bytes moved between modules, counted once per transfer
    /// (end-to-end). This is what the energy model charges at the
    /// per-bit link cost — matching the paper's finding that inter-module
    /// energy stays a small slice even on 10 pJ/bit boards (§V-C).
    pub inter_gpm_bytes: Bytes,
    /// Total bytes moved over inter-GPM links, counted once per traversed
    /// hop (ring transfers at distance `d` contribute `d × bytes`).
    /// A bandwidth-pressure diagnostic, not an energy input.
    pub inter_gpm_hop_bytes: Bytes,
    /// Total bytes routed through an on-board switch chip.
    pub switch_bytes: Bytes,
    /// Aggregate SM lane-stall cycles (pipeline issue slots lost waiting on
    /// memory), summed over all SMs.
    pub stall_cycles: u64,
    /// Aggregate SM-cycles spent with at least one warp issuing.
    pub busy_sm_cycles: u64,
    /// Aggregate SM-cycles spent fully idle (no resident work or all warps
    /// blocked), summed over all SMs. Idle time drives the constant-energy
    /// exposure the paper identifies as the dominant inefficiency.
    pub idle_sm_cycles: u64,
    /// Wall-clock execution time of the run.
    pub elapsed: Time,
}

impl EventCounts {
    /// An empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges another record into this one, summing counts and elapsed
    /// time (sequential composition of kernels/launches).
    pub fn merge_sequential(&mut self, other: &EventCounts) {
        self.instrs.merge(&other.instrs);
        self.txns.merge(&other.txns);
        self.inter_gpm_bytes += other.inter_gpm_bytes;
        self.inter_gpm_hop_bytes += other.inter_gpm_hop_bytes;
        self.switch_bytes += other.switch_bytes;
        self.stall_cycles += other.stall_cycles;
        self.busy_sm_cycles += other.busy_sm_cycles;
        self.idle_sm_cycles += other.idle_sm_cycles;
        self.elapsed += other.elapsed;
    }

    /// Scales every count and the elapsed time by `k`: the record of the
    /// same kernel run `k` times back to back (used to extrapolate short
    /// simulated microbenchmarks to sensor-resolvable durations).
    pub fn scale(&mut self, k: u64) {
        self.instrs.scale(k);
        self.txns.scale(k);
        self.inter_gpm_bytes = Bytes::new(self.inter_gpm_bytes.count() * k);
        self.inter_gpm_hop_bytes = Bytes::new(self.inter_gpm_hop_bytes.count() * k);
        self.switch_bytes = Bytes::new(self.switch_bytes.count() * k);
        self.stall_cycles *= k;
        self.busy_sm_cycles *= k;
        self.idle_sm_cycles *= k;
        self.elapsed = self.elapsed * k as f64;
    }

    /// Total dynamic instructions.
    pub fn total_instructions(&self) -> u64 {
        self.instrs.total()
    }

    /// Fraction of SM-cycles that were idle; `0.0` for an empty record.
    pub fn idle_fraction(&self) -> f64 {
        let total = self.busy_sm_cycles + self.idle_sm_cycles;
        if total == 0 {
            0.0
        } else {
            self.idle_sm_cycles as f64 / total as f64
        }
    }
}

impl fmt::Display for EventCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instrs, {} txns, {} inter-GPM hop-bytes, {:.1}% idle, {}",
            self.total_instructions(),
            self.txns.total(),
            self.inter_gpm_hop_bytes,
            self.idle_fraction() * 100.0,
            self.elapsed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_counts_accumulate() {
        let mut c = OpcodeCounts::new();
        assert!(c.is_empty());
        c.add(Opcode::FAdd32, 5);
        c.add(Opcode::FAdd32, 7);
        c.add(Opcode::Bra, 1);
        assert_eq!(c.get(Opcode::FAdd32), 12);
        assert_eq!(c.total(), 13);
        assert!(!c.is_empty());
        assert_eq!(c.iter().count(), 2);
    }

    #[test]
    fn opcode_counts_merge_and_add() {
        let mut a: OpcodeCounts = [(Opcode::FFma32, 10)].into_iter().collect();
        let b: OpcodeCounts = [(Opcode::FFma32, 5), (Opcode::IAdd32, 2)]
            .into_iter()
            .collect();
        a += &b;
        assert_eq!(a.get(Opcode::FFma32), 15);
        assert_eq!(a.get(Opcode::IAdd32), 2);
    }

    #[test]
    fn txn_counts_accumulate() {
        let mut t = TxnCounts::new();
        t.add(Transaction::DramToL2, 100);
        t.add(Transaction::L2ToL1, 400);
        assert_eq!(t.get(Transaction::DramToL2), 100);
        assert_eq!(t.total(), 500);
        assert_eq!(t.iter().count(), 2);
    }

    #[test]
    fn event_counts_merge_sequential_sums_everything() {
        let mut a = EventCounts::new();
        a.instrs.add(Opcode::FAdd32, 10);
        a.txns.add(Transaction::L1ToReg, 3);
        a.inter_gpm_hop_bytes = Bytes::new(256);
        a.stall_cycles = 7;
        a.busy_sm_cycles = 90;
        a.idle_sm_cycles = 10;
        a.elapsed = Time::from_micros(5.0);

        let mut b = EventCounts::new();
        b.instrs.add(Opcode::FAdd32, 1);
        b.idle_sm_cycles = 10;
        b.busy_sm_cycles = 0;
        b.elapsed = Time::from_micros(1.0);

        a.merge_sequential(&b);
        assert_eq!(a.total_instructions(), 11);
        assert_eq!(a.txns.get(Transaction::L1ToReg), 3);
        assert_eq!(a.inter_gpm_hop_bytes, Bytes::new(256));
        assert_eq!(a.stall_cycles, 7);
        assert!((a.elapsed.micros() - 6.0).abs() < 1e-9);
        assert!((a.idle_fraction() - 20.0 / 110.0).abs() < 1e-12);
    }

    #[test]
    fn scale_multiplies_everything() {
        let mut e = EventCounts::new();
        e.instrs.add(Opcode::FAdd32, 3);
        e.txns.add(Transaction::DramToL2, 2);
        e.inter_gpm_hop_bytes = Bytes::new(10);
        e.switch_bytes = Bytes::new(4);
        e.stall_cycles = 5;
        e.busy_sm_cycles = 7;
        e.idle_sm_cycles = 1;
        e.elapsed = Time::from_micros(2.0);
        e.scale(10);
        assert_eq!(e.instrs.get(Opcode::FAdd32), 30);
        assert_eq!(e.txns.get(Transaction::DramToL2), 20);
        assert_eq!(e.inter_gpm_hop_bytes, Bytes::new(100));
        assert_eq!(e.switch_bytes, Bytes::new(40));
        assert_eq!(e.stall_cycles, 50);
        assert_eq!(e.busy_sm_cycles, 70);
        assert_eq!(e.idle_sm_cycles, 10);
        assert!((e.elapsed.micros() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn idle_fraction_of_empty_record_is_zero() {
        assert_eq!(EventCounts::new().idle_fraction(), 0.0);
    }

    #[test]
    fn display_mentions_key_fields() {
        let mut e = EventCounts::new();
        e.instrs.add(Opcode::FAdd32, 2);
        e.elapsed = Time::from_micros(1.0);
        let s = e.to_string();
        assert!(s.contains("2 instrs"));
        assert!(s.contains("us"));
    }
}
