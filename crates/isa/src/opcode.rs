//! PTX compute opcodes covered by the GPUJoule EPI table.
//!
//! The variants mirror Table Ib of the paper: 32-bit float arithmetic and
//! transcendentals, 32-bit integer arithmetic, 32-bit bitwise logic, and
//! 64-bit float arithmetic, plus the cheap data-movement/control opcodes
//! (`mov`, `setp`, `bra`) that appear in any real kernel and whose energy
//! the microbenchmarks also isolate.

use std::fmt;

/// A native PTX compute instruction class.
///
/// `Opcode` is the unit at which GPUJoule assigns Energy-Per-Instruction
/// values. Each variant corresponds to one microbenchmark in the suite.
///
/// # Examples
///
/// ```
/// use isa::Opcode;
/// assert_eq!(Opcode::FFma32.mnemonic(), "fma.rn.f32");
/// assert!(Opcode::FAdd64.is_fp64());
/// assert_eq!(Opcode::ALL.len(), Opcode::COUNT);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// 32-bit floating-point add (`add.f32`).
    FAdd32,
    /// 32-bit floating-point multiply (`mul.f32`).
    FMul32,
    /// 32-bit floating-point fused multiply-add (`fma.rn.f32`).
    FFma32,
    /// 32-bit integer add (`add.s32`).
    IAdd32,
    /// 32-bit integer subtract (`sub.s32`).
    ISub32,
    /// 32-bit bitwise AND (`and.b32`).
    And32,
    /// 32-bit bitwise OR (`or.b32`).
    Or32,
    /// 32-bit bitwise XOR (`xor.b32`).
    Xor32,
    /// 32-bit float sine approximation (`sin.approx.f32`).
    FSin32,
    /// 32-bit float cosine approximation (`cos.approx.f32`).
    FCos32,
    /// 32-bit integer multiply (`mul.lo.s32`).
    IMul32,
    /// 32-bit integer multiply-add (`mad.lo.s32`).
    IMad32,
    /// 64-bit floating-point add (`add.f64`).
    FAdd64,
    /// 64-bit floating-point multiply (`mul.f64`).
    FMul64,
    /// 64-bit floating-point fused multiply-add (`fma.rn.f64`).
    FFma64,
    /// 32-bit float square root (`sqrt.approx.f32`).
    FSqrt32,
    /// 32-bit float base-2 logarithm (`lg2.approx.f32`).
    FLog232,
    /// 32-bit float base-2 exponential (`ex2.approx.f32`).
    FExp232,
    /// 32-bit float reciprocal (`rcp.rn.f32`).
    FRcp32,
    /// 32-bit register move (`mov.b32`).
    Mov32,
    /// Predicate-setting compare (`setp.lt.s32`).
    Setp,
    /// Branch (`bra`).
    Bra,
}

/// Broad functional-unit class an opcode executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpClass {
    /// Single-precision floating point (FP32 lanes).
    Fp32,
    /// Double-precision floating point (FP64 lanes).
    Fp64,
    /// Integer ALU.
    Int,
    /// Bitwise logic (integer ALU, logic path).
    Logic,
    /// Special-function unit (transcendentals).
    Sfu,
    /// Register moves, predicates, branches (control path).
    Control,
}

impl Opcode {
    /// Number of opcode variants.
    pub const COUNT: usize = 22;

    /// All opcodes, in `repr` order (index of each equals
    /// [`Opcode::index`]).
    pub const ALL: [Opcode; Opcode::COUNT] = [
        Opcode::FAdd32,
        Opcode::FMul32,
        Opcode::FFma32,
        Opcode::IAdd32,
        Opcode::ISub32,
        Opcode::And32,
        Opcode::Or32,
        Opcode::Xor32,
        Opcode::FSin32,
        Opcode::FCos32,
        Opcode::IMul32,
        Opcode::IMad32,
        Opcode::FAdd64,
        Opcode::FMul64,
        Opcode::FFma64,
        Opcode::FSqrt32,
        Opcode::FLog232,
        Opcode::FExp232,
        Opcode::FRcp32,
        Opcode::Mov32,
        Opcode::Setp,
        Opcode::Bra,
    ];

    /// Dense index for table lookups (`0..COUNT`).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Opcode for a dense index, if in range.
    #[inline]
    pub fn from_index(idx: usize) -> Option<Opcode> {
        Opcode::ALL.get(idx).copied()
    }

    /// PTX mnemonic, matching the inline-assembly the paper's
    /// microbenchmarks emit (Algorithm 1).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::FAdd32 => "add.f32",
            Opcode::FMul32 => "mul.f32",
            Opcode::FFma32 => "fma.rn.f32",
            Opcode::IAdd32 => "add.s32",
            Opcode::ISub32 => "sub.s32",
            Opcode::And32 => "and.b32",
            Opcode::Or32 => "or.b32",
            Opcode::Xor32 => "xor.b32",
            Opcode::FSin32 => "sin.approx.f32",
            Opcode::FCos32 => "cos.approx.f32",
            Opcode::IMul32 => "mul.lo.s32",
            Opcode::IMad32 => "mad.lo.s32",
            Opcode::FAdd64 => "add.f64",
            Opcode::FMul64 => "mul.f64",
            Opcode::FFma64 => "fma.rn.f64",
            Opcode::FSqrt32 => "sqrt.approx.f32",
            Opcode::FLog232 => "lg2.approx.f32",
            Opcode::FExp232 => "ex2.approx.f32",
            Opcode::FRcp32 => "rcp.rn.f32",
            Opcode::Mov32 => "mov.b32",
            Opcode::Setp => "setp.lt.s32",
            Opcode::Bra => "bra",
        }
    }

    /// Functional-unit class.
    pub fn class(self) -> OpClass {
        match self {
            Opcode::FAdd32 | Opcode::FMul32 | Opcode::FFma32 => OpClass::Fp32,
            Opcode::FAdd64 | Opcode::FMul64 | Opcode::FFma64 => OpClass::Fp64,
            Opcode::IAdd32 | Opcode::ISub32 | Opcode::IMul32 | Opcode::IMad32 => OpClass::Int,
            Opcode::And32 | Opcode::Or32 | Opcode::Xor32 => OpClass::Logic,
            Opcode::FSin32
            | Opcode::FCos32
            | Opcode::FSqrt32
            | Opcode::FLog232
            | Opcode::FExp232
            | Opcode::FRcp32 => OpClass::Sfu,
            Opcode::Mov32 | Opcode::Setp | Opcode::Bra => OpClass::Control,
        }
    }

    /// `true` for double-precision floating-point opcodes.
    #[inline]
    pub fn is_fp64(self) -> bool {
        self.class() == OpClass::Fp64
    }

    /// `true` for special-function-unit (transcendental) opcodes.
    #[inline]
    pub fn is_sfu(self) -> bool {
        self.class() == OpClass::Sfu
    }

    /// Issue-to-completion latency in core cycles used by the performance
    /// simulator. These are Kepler-era public figures: simple ALU ops are
    /// fully pipelined (effective dependent-issue latency ~9–11 cycles),
    /// FP64 and SFU ops are slower and issue at reduced rate.
    pub fn latency_cycles(self) -> u32 {
        match self.class() {
            OpClass::Fp32 | OpClass::Int | OpClass::Logic => 9,
            OpClass::Fp64 => 16,
            OpClass::Sfu => 18,
            OpClass::Control => 4,
        }
    }

    /// Reciprocal throughput: core cycles between issuing consecutive
    /// instructions of this class from one scheduler. FP64 on a K40-class
    /// part issues at 1/3 FP32 rate; SFU at 1/4.
    pub fn issue_interval(self) -> u32 {
        match self.class() {
            OpClass::Fp32 | OpClass::Int | OpClass::Logic | OpClass::Control => 1,
            OpClass::Fp64 => 3,
            OpClass::Sfu => 4,
        }
    }

    /// `true` if Table Ib of the paper quotes an EPI for this opcode (the
    /// control-path opcodes are below the measurement floor and carry a
    /// derived default instead).
    pub fn in_paper_table(self) -> bool {
        !matches!(self, Opcode::Mov32 | Opcode::Setp | Opcode::Bra)
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_has_every_variant_once() {
        let set: HashSet<Opcode> = Opcode::ALL.iter().copied().collect();
        assert_eq!(set.len(), Opcode::COUNT);
    }

    #[test]
    fn index_round_trips() {
        for (i, op) in Opcode::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
            assert_eq!(Opcode::from_index(i), Some(*op));
        }
        assert_eq!(Opcode::from_index(Opcode::COUNT), None);
    }

    #[test]
    fn mnemonics_are_unique() {
        let set: HashSet<&str> = Opcode::ALL.iter().map(|o| o.mnemonic()).collect();
        assert_eq!(set.len(), Opcode::COUNT);
    }

    #[test]
    fn classes_partition_sensibly() {
        assert_eq!(Opcode::FFma32.class(), OpClass::Fp32);
        assert_eq!(Opcode::FFma64.class(), OpClass::Fp64);
        assert_eq!(Opcode::IMad32.class(), OpClass::Int);
        assert_eq!(Opcode::Xor32.class(), OpClass::Logic);
        assert_eq!(Opcode::FRcp32.class(), OpClass::Sfu);
        assert_eq!(Opcode::Bra.class(), OpClass::Control);
    }

    #[test]
    fn fp64_issues_slower_than_fp32() {
        assert!(Opcode::FAdd64.issue_interval() > Opcode::FAdd32.issue_interval());
        assert!(Opcode::FSin32.issue_interval() > 1);
        assert!(Opcode::FAdd64.latency_cycles() > Opcode::FAdd32.latency_cycles());
    }

    #[test]
    fn paper_table_excludes_control() {
        assert!(Opcode::FAdd32.in_paper_table());
        assert!(!Opcode::Bra.in_paper_table());
        assert!(!Opcode::Mov32.in_paper_table());
        let covered = Opcode::ALL.iter().filter(|o| o.in_paper_table()).count();
        assert_eq!(covered, 19);
    }

    #[test]
    fn display_uses_mnemonic() {
        assert_eq!(Opcode::FSqrt32.to_string(), "sqrt.approx.f32");
    }
}
