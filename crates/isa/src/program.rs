//! Warp instruction streams and kernel program descriptions.
//!
//! The performance simulator is *trace driven*: it executes per-warp
//! instruction streams produced procedurally by a [`KernelProgram`]. Keeping
//! streams procedural (iterators, not materialized vectors) lets a 32-GPM
//! configuration with hundreds of thousands of warps run in constant memory.

use common::{CtaId, WarpId};
use std::fmt;

/// Memory space targeted by a memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemSpace {
    /// Global memory, backed by the L1/L2/DRAM hierarchy and subject to
    /// first-touch page placement across GPMs.
    Global,
    /// Per-CTA shared memory (scratchpad); always local, never misses.
    Shared,
}

/// One coalesced warp-level memory reference.
///
/// Addresses are *byte* addresses of the 128-byte cacheline the (coalesced)
/// warp access touches. The generators in the `workloads` crate guarantee
/// coalescing the same way the paper's microbenchmarks do; memory divergence
/// is modeled by issuing several `MemRef`s for one logical instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Target memory space.
    pub space: MemSpace,
    /// Byte address (cacheline aligned by construction in the generators).
    pub addr: u64,
    /// `true` for stores, `false` for loads.
    pub is_store: bool,
}

impl MemRef {
    /// A coalesced global load of the cacheline containing `addr`.
    #[inline]
    pub fn global_load(addr: u64) -> Self {
        MemRef {
            space: MemSpace::Global,
            addr,
            is_store: false,
        }
    }

    /// A coalesced global store to the cacheline containing `addr`.
    #[inline]
    pub fn global_store(addr: u64) -> Self {
        MemRef {
            space: MemSpace::Global,
            addr,
            is_store: true,
        }
    }

    /// A shared-memory access (never leaves the SM).
    #[inline]
    pub fn shared(addr: u64, is_store: bool) -> Self {
        MemRef {
            space: MemSpace::Shared,
            addr,
            is_store,
        }
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = if self.is_store { "st" } else { "ld" };
        let sp = match self.space {
            MemSpace::Global => "global",
            MemSpace::Shared => "shared",
        };
        write!(f, "{op}.{sp} [{:#x}]", self.addr)
    }
}

/// One warp-level instruction in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WarpInstr {
    /// A compute instruction executed by all active lanes.
    Compute(crate::Opcode),
    /// A coalesced memory reference.
    Mem(MemRef),
}

impl fmt::Display for WarpInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarpInstr::Compute(op) => write!(f, "{op}"),
            WarpInstr::Mem(m) => write!(f, "{m}"),
        }
    }
}

/// A boxed per-warp instruction stream.
///
/// `Sync` is required (not just `Send`) because engines park partially
/// decoded streams in reusable scratch state that is reachable through
/// `&GpuSim`; in practice streams are pure `map`/`range` iterators over
/// `Copy` captures, which are automatically both.
pub type WarpInstrStream = Box<dyn Iterator<Item = WarpInstr> + Send + Sync>;

/// Instructions decoded per [`PredecodedStream`] refill window.
///
/// Large enough that the boxed iterator's virtual `next()` is amortized
/// to noise in the issue loop, small enough that a 32-GPM machine full
/// of resident warps still runs in constant memory (the property the
/// procedural-stream design exists for).
pub const PREDECODE_WINDOW: usize = 64;

/// A pre-decoded, flat view of one warp's [`WarpInstrStream`].
///
/// The cycle engine's issue loop reads the *current* instruction of
/// every resident warp on every visited cycle. Pulling that instruction
/// through `Box<dyn Iterator>::next()` and caching it in an
/// `Option<WarpInstr>` costs a virtual call per instruction and a
/// 24-byte enum copy per peek. `PredecodedStream` instead decodes the
/// stream into a flat `Vec<WarpInstr>` window indexed by a program
/// counter: peeking is an array load, and the iterator is only touched
/// once per [`PREDECODE_WINDOW`] instructions when the window refills.
///
/// The buffer is reusable: engines keep one `PredecodedStream` per warp
/// slot and [`reset`](PredecodedStream::reset) it when a new warp lands
/// in the slot, so steady-state execution performs no allocation.
#[derive(Default)]
pub struct PredecodedStream {
    /// The tail of the stream not yet decoded (`None` once drained).
    stream: Option<WarpInstrStream>,
    /// The current decode window.
    window: Vec<WarpInstr>,
    /// A whole-kernel program shared by every warp (homogeneous kernels
    /// via [`KernelProgram::uniform_warp_program`]); replaces `stream` +
    /// `window` when present, so the slot holds no per-warp decode
    /// state at all.
    shared: Option<std::sync::Arc<[WarpInstr]>>,
    /// Index of the current instruction within the window or shared
    /// program.
    pos: usize,
}

impl PredecodedStream {
    /// An empty stream holder (no instructions; [`current`] is `None`).
    ///
    /// [`current`]: PredecodedStream::current
    pub fn new() -> Self {
        Self::default()
    }

    /// Adopts a fresh warp stream, decoding its first window. Returns
    /// `false` when the stream is empty (a degenerate warp that retires
    /// instantly). The window buffer's capacity is retained across
    /// resets.
    pub fn reset(&mut self, stream: WarpInstrStream) -> bool {
        self.shared = None;
        self.stream = Some(stream);
        self.refill();
        !self.window.is_empty()
    }

    /// Adopts a shared, fully pre-decoded program (every warp of the
    /// kernel runs the same sequence). Returns `false` when the program
    /// is empty. No per-warp decode happens at all: peeks index
    /// straight into the shared array.
    pub fn reset_shared(&mut self, program: std::sync::Arc<[WarpInstr]>) -> bool {
        self.stream = None;
        self.window.clear();
        self.pos = 0;
        let nonempty = !program.is_empty();
        self.shared = Some(program);
        nonempty
    }

    /// Drops the stream and decoded window (used when a warp retires, so
    /// slot reuse never observes a stale instruction).
    pub fn release(&mut self) {
        self.stream = None;
        self.window.clear();
        self.shared = None;
        self.pos = 0;
    }

    /// The instruction at the current program counter, or `None` when
    /// the warp's stream is exhausted. This is the hot peek: one bounds
    /// check and one array load.
    #[inline]
    pub fn current(&self) -> Option<WarpInstr> {
        match &self.shared {
            Some(p) => p.get(self.pos).copied(),
            None => self.window.get(self.pos).copied(),
        }
    }

    /// Advances the program counter past the current instruction,
    /// refilling the decode window from the underlying iterator when it
    /// runs dry.
    #[inline]
    pub fn advance(&mut self) {
        self.pos += 1;
        if self.shared.is_none() && self.pos >= self.window.len() && self.stream.is_some() {
            self.refill();
        }
    }

    fn refill(&mut self) {
        self.window.clear();
        self.pos = 0;
        if let Some(stream) = &mut self.stream {
            for _ in 0..PREDECODE_WINDOW {
                match stream.next() {
                    Some(instr) => self.window.push(instr),
                    None => {
                        self.stream = None;
                        break;
                    }
                }
            }
        }
    }
}

impl fmt::Debug for PredecodedStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PredecodedStream")
            .field("window_len", &self.window.len())
            .field("pos", &self.pos)
            .field("drained", &self.stream.is_none())
            .field("shared", &self.shared.is_some())
            .finish()
    }
}

/// Shape of a kernel launch grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridShape {
    /// Number of CTAs (thread blocks) in the grid.
    pub ctas: u32,
    /// Warps per CTA.
    pub warps_per_cta: u32,
}

impl GridShape {
    /// Creates a grid shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(ctas: u32, warps_per_cta: u32) -> Self {
        assert!(ctas > 0, "grid must have at least one CTA");
        assert!(warps_per_cta > 0, "CTA must have at least one warp");
        GridShape {
            ctas,
            warps_per_cta,
        }
    }

    /// Total warps across the grid.
    #[inline]
    pub fn total_warps(self) -> u64 {
        self.ctas as u64 * self.warps_per_cta as u64
    }
}

impl fmt::Display for GridShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} CTAs x {} warps", self.ctas, self.warps_per_cta)
    }
}

/// A kernel the simulator can launch: a grid shape plus a procedural
/// instruction stream per warp.
///
/// Implementations live in the `workloads` crate (benchmark surrogates) and
/// the `microbench` crate (EPI/EPT microbenchmarks). Implementations must be
/// deterministic: the same `(cta, warp)` always yields the same stream, so
/// that performance and energy runs replay identically.
pub trait KernelProgram: Send + Sync {
    /// Kernel name (for reports).
    fn name(&self) -> &str;

    /// Launch grid shape.
    fn grid(&self) -> GridShape;

    /// The instruction stream for warp `warp` of CTA `cta`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `cta`/`warp` are outside the grid.
    fn warp_instructions(&self, cta: CtaId, warp: WarpId) -> WarpInstrStream;

    /// If — and only if — every warp of every CTA executes exactly the
    /// sequence [`warp_instructions`] would yield for it, that sequence,
    /// decoded once. The default (`None`) means "warps differ, or
    /// unknown".
    ///
    /// Engines use this to decode a homogeneous kernel a single time and
    /// share the flat array across all warp slots, instead of pulling
    /// every warp's instructions through its own boxed iterator. The
    /// returned sequence must match the per-warp streams instruction for
    /// instruction; simulation results are computed from whichever
    /// source the engine picks, so a divergent hint silently changes
    /// results (differential tests against the iterator path catch
    /// this).
    ///
    /// [`warp_instructions`]: KernelProgram::warp_instructions
    fn uniform_warp_program(&self) -> Option<Vec<WarpInstr>> {
        None
    }

    /// Approximate bytes of the global-memory footprint, used by cache and
    /// page-placement sizing heuristics. Zero if unknown.
    fn footprint_bytes(&self) -> u64 {
        0
    }

    /// The contiguous global-memory regions this kernel works on, as
    /// `(base_address, length_bytes)` pairs, laid out so that address
    /// order matches the CTA/warp ownership order (the natural layout an
    /// initialization phase writes them in).
    ///
    /// Used by the simulator's pre-fault pass to model in-order
    /// first-touch placement. The default (empty) makes the simulator
    /// fall back to walking the instruction trace in CTA order.
    fn data_regions(&self) -> Vec<(u64, u64)> {
        Vec::new()
    }
}

/// Renders the first `limit` instructions of one warp's stream as a
/// PTX-flavoured listing — a debugging aid for inspecting generated
/// traces.
///
/// # Examples
///
/// ```
/// # use isa::{GridShape, KernelProgram, WarpInstr, WarpInstrStream, Opcode};
/// # use common::{CtaId, WarpId};
/// # struct K;
/// # impl KernelProgram for K {
/// #     fn name(&self) -> &str { "k" }
/// #     fn grid(&self) -> GridShape { GridShape::new(1, 1) }
/// #     fn warp_instructions(&self, _: CtaId, _: WarpId) -> WarpInstrStream {
/// #         Box::new([WarpInstr::Compute(Opcode::FFma32)].into_iter())
/// #     }
/// # }
/// let listing = isa::disassemble(&K, CtaId::new(0), WarpId::new(0), 10);
/// assert!(listing.contains("fma.rn.f32"));
/// ```
pub fn disassemble(program: &dyn KernelProgram, cta: CtaId, warp: WarpId, limit: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "// {} {cta} {warp}", program.name());
    let mut stream = program.warp_instructions(cta, warp);
    for i in 0..limit {
        match stream.next() {
            Some(instr) => {
                let _ = writeln!(out, "{i:>6}:  {instr}");
            }
            None => {
                let _ = writeln!(out, "{i:>6}:  <end of warp>");
                return out;
            }
        }
    }
    if stream.next().is_some() {
        let _ = writeln!(out, "        ... (truncated at {limit})");
    }
    out
}

/// A single kernel launch inside a workload: which program, and how many
/// times the workload invokes it back-to-back.
pub struct LaunchSpec {
    /// The kernel to launch.
    pub program: Box<dyn KernelProgram>,
    /// Number of consecutive invocations (BFS/MiniAMR-style apps launch
    /// hundreds of short kernels; §IV-B2 discusses the sensor implications).
    pub invocations: u32,
}

impl LaunchSpec {
    /// A launch spec for a single invocation.
    pub fn once(program: Box<dyn KernelProgram>) -> Self {
        LaunchSpec {
            program,
            invocations: 1,
        }
    }

    /// A launch spec for `n` back-to-back invocations.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn repeated(program: Box<dyn KernelProgram>, n: u32) -> Self {
        assert!(n > 0, "invocation count must be positive");
        LaunchSpec {
            program,
            invocations: n,
        }
    }
}

impl fmt::Debug for LaunchSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LaunchSpec")
            .field("program", &self.program.name())
            .field("grid", &self.program.grid())
            .field("invocations", &self.invocations)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Opcode;

    struct TinyKernel;

    impl KernelProgram for TinyKernel {
        fn name(&self) -> &str {
            "tiny"
        }
        fn grid(&self) -> GridShape {
            GridShape::new(2, 4)
        }
        fn warp_instructions(&self, cta: CtaId, warp: WarpId) -> WarpInstrStream {
            let base = (cta.0 as u64 * 4 + warp.0 as u64) * 128;
            Box::new(
                vec![
                    WarpInstr::Mem(MemRef::global_load(base)),
                    WarpInstr::Compute(Opcode::FFma32),
                    WarpInstr::Mem(MemRef::global_store(base)),
                ]
                .into_iter(),
            )
        }
    }

    #[test]
    fn grid_shape_totals() {
        let g = GridShape::new(3, 8);
        assert_eq!(g.total_warps(), 24);
    }

    #[test]
    #[should_panic(expected = "at least one CTA")]
    fn zero_ctas_panics() {
        let _ = GridShape::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one warp")]
    fn zero_warps_panics() {
        let _ = GridShape::new(1, 0);
    }

    fn compute_stream(len: usize) -> WarpInstrStream {
        Box::new((0..len).map(|_| WarpInstr::Compute(Opcode::FFma32)))
    }

    #[test]
    fn predecoded_stream_replays_stream_exactly() {
        // Lengths chosen to land short of, exactly on, and just past the
        // window boundary, plus a multi-window length.
        for len in [
            0,
            1,
            PREDECODE_WINDOW - 1,
            PREDECODE_WINDOW,
            PREDECODE_WINDOW + 1,
            3 * PREDECODE_WINDOW + 7,
        ] {
            let mut pd = PredecodedStream::new();
            let nonempty = pd.reset(compute_stream(len));
            assert_eq!(nonempty, len > 0, "len={len}");
            let mut replay = Vec::new();
            while let Some(instr) = pd.current() {
                replay.push(instr);
                pd.advance();
            }
            assert_eq!(replay.len(), len, "len={len}");
            assert!(pd.current().is_none());
            // Exhaustion is stable: further advances stay None.
            pd.advance();
            assert!(pd.current().is_none());
        }
    }

    #[test]
    fn predecoded_stream_reset_reuses_buffer() {
        let mut pd = PredecodedStream::new();
        assert!(pd.reset(compute_stream(5)));
        for _ in 0..5 {
            assert!(pd.current().is_some());
            pd.advance();
        }
        assert!(pd.current().is_none());
        // Adopt a fresh stream in the same holder; replay restarts cleanly.
        assert!(pd.reset(compute_stream(2)));
        assert!(pd.current().is_some());
        pd.advance();
        assert!(pd.current().is_some());
        pd.advance();
        assert!(pd.current().is_none());
    }

    #[test]
    fn predecoded_stream_release_clears_state() {
        let mut pd = PredecodedStream::new();
        assert!(pd.reset(compute_stream(PREDECODE_WINDOW * 2)));
        pd.advance();
        pd.release();
        assert!(pd.current().is_none());
        pd.advance();
        assert!(pd.current().is_none());
    }

    #[test]
    fn predecoded_stream_preserves_instruction_order() {
        let k = TinyKernel;
        let expected: Vec<WarpInstr> = k.warp_instructions(CtaId::new(0), WarpId::new(1)).collect();
        let mut pd = PredecodedStream::new();
        assert!(pd.reset(k.warp_instructions(CtaId::new(0), WarpId::new(1))));
        let mut got = Vec::new();
        while let Some(instr) = pd.current() {
            got.push(instr);
            pd.advance();
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn kernel_streams_are_deterministic() {
        let k = TinyKernel;
        let a: Vec<WarpInstr> = k.warp_instructions(CtaId::new(1), WarpId::new(2)).collect();
        let b: Vec<WarpInstr> = k.warp_instructions(CtaId::new(1), WarpId::new(2)).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn warps_get_distinct_addresses() {
        let k = TinyKernel;
        let a: Vec<WarpInstr> = k.warp_instructions(CtaId::new(0), WarpId::new(0)).collect();
        let b: Vec<WarpInstr> = k.warp_instructions(CtaId::new(0), WarpId::new(1)).collect();
        assert_ne!(a[0], b[0]);
    }

    #[test]
    fn memref_constructors() {
        assert!(!MemRef::global_load(0).is_store);
        assert!(MemRef::global_store(0).is_store);
        assert_eq!(MemRef::shared(4, false).space, MemSpace::Shared);
    }

    #[test]
    fn launch_spec_repeats() {
        let spec = LaunchSpec::repeated(Box::new(TinyKernel), 10);
        assert_eq!(spec.invocations, 10);
        let dbg = format!("{spec:?}");
        assert!(dbg.contains("tiny"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_invocations_panics() {
        let _ = LaunchSpec::repeated(Box::new(TinyKernel), 0);
    }

    #[test]
    fn disassemble_lists_and_truncates() {
        let k = TinyKernel;
        let full = disassemble(&k, CtaId::new(0), WarpId::new(0), 10);
        assert!(full.contains("fma.rn.f32"));
        assert!(full.contains("ld.global"));
        assert!(full.contains("<end of warp>"));
        let cut = disassemble(&k, CtaId::new(0), WarpId::new(0), 2);
        assert!(cut.contains("truncated at 2"));
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            WarpInstr::Mem(MemRef::global_load(0x80)).to_string(),
            "ld.global [0x80]"
        );
        assert_eq!(WarpInstr::Compute(Opcode::FAdd32).to_string(), "add.f32");
        assert_eq!(GridShape::new(2, 4).to_string(), "2 CTAs x 4 warps");
    }
}
